package gateway

import (
	"context"
	"errors"
	"testing"
	"time"

	"remac/internal/resilience"
)

// lifecycleEvents filters an audit tail down to membership transitions.
func lifecycleEvents(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == EventTransition {
			out = append(out, e)
		}
	}
	return out
}

// TestLifecycleActiveDetection walks the full state machine off probe
// evidence alone: healthy → suspect → ejected on consecutive failed
// probes, then (no respawn hook) rejoining → healthy once the instance
// comes back and passes RejoinProbes caught-up probes.
func TestLifecycleActiveDetection(t *testing.T) {
	insts, fakes := fakeFleet(3)
	g := NewWithInstances(Config{Seed: 1, EjectAfter: 3, RejoinProbes: 2, PassiveFailures: -1}, insts)
	defer g.Shutdown(context.Background())

	victim := 1
	fakes[victim].setDown(true)

	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardSuspect {
		t.Fatalf("after 1 failed probe: state %v, want suspect", got)
	}
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardSuspect {
		t.Fatalf("after 2 failed probes: state %v, want suspect", got)
	}
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardEjected {
		t.Fatalf("after EjectAfter=3 failed probes: state %v, want ejected", got)
	}
	for i, st := range g.LifecycleStates() {
		if i != victim && st != ShardHealthy {
			t.Fatalf("shard %d state %v, want healthy", i, st)
		}
	}

	// The instance recovers on its own: probation, then readmission after
	// RejoinProbes consecutive caught-up probes.
	fakes[victim].setDown(false)
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardRejoining {
		t.Fatalf("after recovery probe: state %v, want rejoining", got)
	}
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardRejoining {
		t.Fatalf("after 1 caught-up probe (RejoinProbes=2): state %v, want rejoining", got)
	}
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardHealthy {
		t.Fatalf("after RejoinProbes caught-up probes: state %v, want healthy", got)
	}

	trans := lifecycleEvents(g.Audit(0))
	var seq []string
	for _, e := range trans {
		if e.Shard == victim {
			seq = append(seq, e.From+">"+e.To)
		}
	}
	want := []string{"healthy>suspect", "suspect>ejected", "ejected>rejoining", "rejoining>healthy"}
	if len(seq) != len(want) {
		t.Fatalf("transition audit trail %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (full trail %v)", i, seq[i], want[i], seq)
		}
	}
	st := g.Stats()
	if st.Ejections != 1 || st.Rejoins != 1 {
		t.Fatalf("stats ejections=%d rejoins=%d, want 1/1", st.Ejections, st.Rejoins)
	}
}

// TestLifecyclePassiveEjectionAndFailover: Internal-class failures fail
// over to the next ring shard (marked on the Result), and consecutive
// failures trip passive ejection carrying the triggering request id.
func TestLifecyclePassiveEjectionAndFailover(t *testing.T) {
	insts, fakes := fakeFleet(3)
	g := NewWithInstances(Config{Seed: 1, Failover: 1, PassiveFailures: 2, EjectAfter: -1}, insts)
	defer g.Shutdown(context.Background())

	q := gatewayQuery("cri1")
	order := g.routableOrder(q)
	home, alt := order[0], order[1]
	fakes[home].setDown(true)

	res, err := g.Do(context.Background(), Request{Tenant: "t", RequestID: "req-1", Query: q})
	if err != nil {
		t.Fatalf("Do with failover: %v", err)
	}
	if !res.Failover || res.Spilled {
		t.Fatalf("Result failover=%v spilled=%v, want failover only", res.Failover, res.Spilled)
	}
	if res.Shard != alt {
		t.Fatalf("served by shard %d, want first alternate %d", res.Shard, alt)
	}
	if got := g.ShardState(home); got != ShardHealthy {
		t.Fatalf("one failure ejected the shard early: %v", got)
	}

	if _, err := g.Do(context.Background(), Request{Tenant: "t", RequestID: "req-2", Query: q}); err != nil {
		t.Fatalf("Do second: %v", err)
	}
	if got := g.ShardState(home); got != ShardEjected {
		t.Fatalf("after PassiveFailures=2 internal failures: state %v, want ejected", got)
	}

	// The ejected shard leaves the preference order: no more attempts land
	// on it, and the alternate serves without failover marking.
	attemptsBefore := fakes[home].attemptCount()
	res, err = g.Do(context.Background(), Request{Tenant: "t", RequestID: "req-3", Query: q})
	if err != nil {
		t.Fatalf("Do after ejection: %v", err)
	}
	if res.Failover {
		t.Fatal("query after ejection should route directly, not fail over")
	}
	if fakes[home].attemptCount() != attemptsBefore {
		t.Fatal("ejected shard still receives attempts")
	}

	trans := lifecycleEvents(g.Audit(0))
	if len(trans) != 1 {
		t.Fatalf("want exactly one transition event, got %d", len(trans))
	}
	e := trans[0]
	if e.Shard != home || e.To != "ejected" || e.RequestID != "req-2" {
		t.Fatalf("passive ejection event %+v: want shard %d, to ejected, request id req-2", e, home)
	}

	st := g.Stats()
	if st.FailedOver != 2 {
		t.Fatalf("stats failed_over=%d, want 2", st.FailedOver)
	}
	if st.PerShard[home].Lifecycle.State != "ejected" {
		t.Fatalf("per-shard lifecycle state %q, want ejected", st.PerShard[home].Lifecycle.State)
	}
}

// TestLifecycleFailoverExhausted: when every shard in the failover budget
// fails, the error is typed and wraps ErrFailoverExhausted.
func TestLifecycleFailoverExhausted(t *testing.T) {
	insts, fakes := fakeFleet(3)
	g := NewWithInstances(Config{Seed: 1, Failover: 1, PassiveFailures: -1, EjectAfter: -1}, insts)
	defer g.Shutdown(context.Background())

	for _, f := range fakes {
		f.setDown(true)
	}
	q := gatewayQuery("cri1")
	_, err := g.Do(context.Background(), Request{Tenant: "t", Query: q})
	if err == nil {
		t.Fatal("want failure when every shard is down")
	}
	if !errors.Is(err, ErrFailoverExhausted) {
		t.Fatalf("error %v does not wrap ErrFailoverExhausted", err)
	}
	if !resilience.IsClass(err, resilience.Internal) {
		t.Fatalf("failover exhaustion should stay Internal-class: %v", err)
	}
	// Budget 1: home plus one alternate, never the third shard.
	total := 0
	for _, f := range fakes {
		total += f.attemptCount()
	}
	if total != 2 {
		t.Fatalf("%d attempts across the fleet, want 2 (home + 1 failover)", total)
	}
	if st := g.Stats(); st.FailoverExhausted != 1 {
		t.Fatalf("stats failover_exhausted=%d, want 1", st.FailoverExhausted)
	}
}

// TestLifecycleFailoverDisabled: a negative budget turns Internal-class
// failures back into immediate errors (PR-8 behavior).
func TestLifecycleFailoverDisabled(t *testing.T) {
	insts, fakes := fakeFleet(2)
	g := NewWithInstances(Config{Seed: 1, Failover: -1, PassiveFailures: -1, EjectAfter: -1}, insts)
	defer g.Shutdown(context.Background())

	q := gatewayQuery("cri1")
	home := g.routableOrder(q)[0]
	fakes[home].setDown(true)
	_, err := g.Do(context.Background(), Request{Tenant: "t", Query: q})
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("want the shard's own error, got %v", err)
	}
	if errors.Is(err, ErrFailoverExhausted) {
		t.Fatal("disabled failover must not report exhaustion")
	}
	if fakes[1-home].attemptCount() != 0 {
		t.Fatal("disabled failover still tried the alternate shard")
	}
}

// TestLifecycleDeadlineSharedAcrossAttempts: the gateway binds the
// per-query deadline once; the failover attempt sees the same context
// deadline (remaining budget), not a fresh one, and the shard-level
// timeout is cleared.
func TestLifecycleDeadlineSharedAcrossAttempts(t *testing.T) {
	insts, fakes := fakeFleet(2)
	g := NewWithInstances(Config{Seed: 1, Failover: 1, PassiveFailures: -1, EjectAfter: -1}, insts)
	defer g.Shutdown(context.Background())

	q := gatewayQuery("cri1")
	q.Timeout = 5 * time.Second
	home := g.routableOrder(q)[0]
	fakes[home].setDown(true)

	res, err := g.Do(context.Background(), Request{Tenant: "t", Query: q})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !res.Failover {
		t.Fatal("want a failover-served result")
	}
	var seen []time.Time
	for _, f := range fakes {
		f.mu.Lock()
		for i, dl := range f.deadlines {
			if dl.IsZero() {
				t.Fatalf("shard %s attempt %d saw no context deadline", f.id, i)
			}
			if f.timeouts[i] != 0 {
				t.Fatalf("shard %s attempt %d saw shard-level timeout %v, want 0 (gateway owns the deadline)", f.id, i, f.timeouts[i])
			}
			seen = append(seen, dl)
		}
		f.mu.Unlock()
	}
	if len(seen) != 2 {
		t.Fatalf("recorded %d attempts, want 2", len(seen))
	}
	if !seen[0].Equal(seen[1]) {
		t.Fatalf("attempts saw different deadlines (%v vs %v): each attempt got a fresh budget", seen[0], seen[1])
	}
}

// TestLifecycleDeadlineExhaustedTyped: a query that burns its whole
// deadline on a hung shard fails with the typed Canceled-class (504)
// ErrDeadlineExhausted error, and no further attempts run after expiry.
func TestLifecycleDeadlineExhaustedTyped(t *testing.T) {
	cfg := Config{Seed: 3, Failover: 1, PassiveFailures: -1, EjectAfter: -1}
	q := gatewayQuery("cri1")
	q.Timeout = 30 * time.Millisecond

	// Ring placement depends only on configuration, so a throwaway gateway
	// over fakes reveals which index homes the key; the real fleet then
	// puts the hung shard exactly there.
	scout := NewWithInstances(cfg, func() []Instance { i, _ := fakeFleet(2); return i }())
	home := scout.routableOrder(q)[0]
	scout.Shutdown(context.Background())

	hung := NewKillable(newFakeShard("shard-hung"))
	healthy := newFakeShard("shard-ok")
	insts := make([]Instance, 2)
	insts[home] = hung
	insts[1-home] = healthy
	g := NewWithInstances(cfg, insts)
	defer g.Shutdown(context.Background())
	hung.Kill(KillHang)

	start := time.Now()
	_, err := g.Do(context.Background(), Request{Tenant: "t", Query: q})
	if err == nil {
		t.Fatal("want deadline failure")
	}
	if !errors.Is(err, ErrDeadlineExhausted) {
		t.Fatalf("error %v does not wrap ErrDeadlineExhausted", err)
	}
	if !resilience.IsClass(err, resilience.Canceled) {
		t.Fatalf("deadline exhaustion should be Canceled-class (504): %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline query took %v, want ~30ms", elapsed)
	}
	if healthy.attemptCount() != 0 {
		t.Fatal("no attempt should run after the deadline expired")
	}
	if st := g.Stats(); st.DeadlineExceeded != 1 {
		t.Fatalf("stats deadline_exceeded=%d, want 1", st.DeadlineExceeded)
	}
}

// TestLifecycleRespawnAndCatchUp: the supervisor replaces a dead ejected
// instance via the Respawn hook, and the fresh instance is readmitted
// only after its dataset versions catch up to the broadcast version —
// including broadcasts it missed while dead.
func TestLifecycleRespawnAndCatchUp(t *testing.T) {
	insts, fakes := fakeFleet(2)
	var respawned *fakeShard
	cfg := Config{
		Seed: 1, EjectAfter: 1, RejoinProbes: 1, PassiveFailures: -1,
		Respawn: func(shard int, id string) Instance {
			respawned = newFakeShard(id)
			return respawned
		},
	}
	g := NewWithInstances(cfg, insts)
	defer g.Shutdown(context.Background())

	g.InvalidateDataset("cri1")
	g.InvalidateDataset("cri1")
	victim := 0
	fakes[victim].setDown(true)
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardEjected {
		t.Fatalf("EjectAfter=1: state %v, want ejected", got)
	}

	// A broadcast lands while the shard is dead: bounded, counted, and not
	// acknowledged by the corpse.
	v := g.InvalidateDataset("cri1")
	if v != 3 {
		t.Fatalf("broadcast version %d, want 3", v)
	}
	if st := g.Stats(); st.InvalidationsLagged == 0 {
		t.Fatal("dead shard's missed catch-up not counted")
	}

	g.ProbeNow() // supervisor respawns; fresh instance starts at version 0
	if got := g.ShardState(victim); got != ShardRejoining {
		t.Fatalf("after respawn: state %v, want rejoining", got)
	}
	if respawned == nil {
		t.Fatal("respawn hook never called")
	}
	g.ProbeNow() // catch-up replays the broadcasts, then readmits
	if got := g.ShardState(victim); got != ShardHealthy {
		t.Fatalf("after caught-up probe: state %v, want healthy", got)
	}
	if got := respawned.DatasetVersion("cri1"); got != 3 {
		t.Fatalf("respawned shard at version %d after rejoin, want 3", got)
	}
	if g.instance(victim) != Instance(respawned) {
		t.Fatal("gateway still routes to the dead instance")
	}
	st := g.Stats()
	if st.Respawns != 1 || st.Rejoins != 1 {
		t.Fatalf("stats respawns=%d rejoins=%d, want 1/1", st.Respawns, st.Rejoins)
	}
}

// TestLifecycleRejoinBlockedUntilCatchUp: a live-again shard that cannot
// acknowledge invalidations stays in rejoining — stale caches never take
// traffic — and is readmitted the moment catch-up succeeds.
func TestLifecycleRejoinBlockedUntilCatchUp(t *testing.T) {
	insts, fakes := fakeFleet(2)
	g := NewWithInstances(Config{Seed: 1, EjectAfter: 1, RejoinProbes: 1, PassiveFailures: -1}, insts)
	defer g.Shutdown(context.Background())

	g.InvalidateDataset("cri1")
	victim := 1
	fakes[victim].setDown(true)
	g.InvalidateDataset("cri1") // missed while down
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardEjected {
		t.Fatalf("state %v, want ejected", got)
	}

	// Back alive but refusing invalidations: probation never ends.
	fakes[victim].setNoAck(true)
	fakes[victim].setDown(false)
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardRejoining {
		t.Fatalf("state %v, want rejoining", got)
	}
	for i := 0; i < 3; i++ {
		g.ProbeNow()
		if got := g.ShardState(victim); got != ShardRejoining {
			t.Fatalf("round %d: state %v, want rejoining while versions lag", i, got)
		}
	}

	fakes[victim].setNoAck(false)
	g.ProbeNow()
	if got := g.ShardState(victim); got != ShardHealthy {
		t.Fatalf("state %v, want healthy once caught up", got)
	}
	want := g.DatasetVersion("cri1")
	if got := fakes[victim].DatasetVersion("cri1"); got != want {
		t.Fatalf("rejoined shard at version %d, want %d", got, want)
	}
}

// TestLifecycleHangDetection: a wedged shard (probes block instead of
// failing) is detected by the probe timeout and walks the same ejection
// path.
func TestLifecycleHangDetection(t *testing.T) {
	inner := newFakeShard("shard-0")
	k := NewKillable(inner)
	healthy := newFakeShard("shard-1")
	g := NewWithInstances(Config{
		Seed: 1, EjectAfter: 2, RejoinProbes: 1, PassiveFailures: -1,
		ProbeTimeout: 20 * time.Millisecond,
	}, []Instance{k, healthy})
	defer g.Shutdown(context.Background())

	k.Kill(KillHang)
	g.ProbeNow()
	if got := g.ShardState(0); got != ShardSuspect {
		t.Fatalf("hung probe: state %v, want suspect", got)
	}
	g.ProbeNow()
	if got := g.ShardState(0); got != ShardEjected {
		t.Fatalf("after EjectAfter=2 hung probes: state %v, want ejected", got)
	}
	k.Revive()
	g.ProbeNow()
	if got := g.ShardState(0); got != ShardRejoining {
		t.Fatalf("after revive: state %v, want rejoining", got)
	}
	g.ProbeNow()
	if got := g.ShardState(0); got != ShardHealthy {
		t.Fatalf("after caught-up probe: state %v, want healthy", got)
	}
}

// TestLifecycleQuorumHealth: healthz/readyz degrade once ejections break
// the configured live-shard quorum.
func TestLifecycleQuorumHealth(t *testing.T) {
	insts, fakes := fakeFleet(3)
	g := NewWithInstances(Config{Seed: 1, EjectAfter: 1, ReadyQuorum: 2, PassiveFailures: -1}, insts)
	defer g.Shutdown(context.Background())

	if h := g.Healthz(); !h.OK || h.ReadyShards != 3 || h.Quorum != 2 {
		t.Fatalf("full fleet: %+v, want OK with 3 live and quorum 2", h)
	}
	fakes[0].setDown(true)
	g.ProbeNow()
	h := g.Healthz()
	if !h.OK || h.ReadyShards != 2 || h.EjectedShards != 1 {
		t.Fatalf("one ejection: %+v, want OK with 2 live, 1 ejected", h)
	}
	if h.Lifecycle[0] != "ejected" || h.Lifecycle[1] != "healthy" {
		t.Fatalf("lifecycle payload %v", h.Lifecycle)
	}
	fakes[1].setDown(true)
	g.ProbeNow()
	if h := g.Healthz(); h.OK || h.ReadyShards != 1 {
		t.Fatalf("quorum broken: %+v, want !OK with 1 live", h)
	}
	if h := g.Readyz(); h.OK {
		t.Fatalf("readyz %+v, want !OK below quorum", h)
	}
}

// TestLifecycleNoRoutableShards: with every shard ejected, Do fails fast
// with the typed Overloaded-class ErrNoShards.
func TestLifecycleNoRoutableShards(t *testing.T) {
	insts, fakes := fakeFleet(2)
	g := NewWithInstances(Config{Seed: 1, EjectAfter: 1, PassiveFailures: -1}, insts)
	defer g.Shutdown(context.Background())

	for _, f := range fakes {
		f.setDown(true)
	}
	g.ProbeNow()
	_, err := g.Do(context.Background(), Request{Tenant: "t", Query: gatewayQuery("cri1")})
	if !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v", err)
	}
	if !resilience.IsClass(err, resilience.Overloaded) {
		t.Fatalf("no-routable-shards should be Overloaded-class (503): %v", err)
	}
	for _, f := range fakes {
		if f.attemptCount() != 0 {
			t.Fatal("ejected shard received an attempt")
		}
	}
}
