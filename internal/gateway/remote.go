package gateway

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"remac/internal/engine"
	"remac/internal/httpapi"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// ErrRetryBudgetExhausted is the root cause inside the Overloaded-class
// (503 + Retry-After) error returned when the server-wide retry budget
// cannot fund another wire retry. A typed rejection instead of a retry
// storm: a recovering fleet must not be hammered by every caller's
// backlog at once.
var ErrRetryBudgetExhausted = errors.New("gateway: wire retry budget exhausted")

// ErrNotTransmittable is the root cause inside the Compile-class error a
// RemoteInstance returns for queries it cannot reconstruct over the wire
// (in-process probes, fault plans, or input bindings with no dataset).
var ErrNotTransmittable = errors.New("gateway: query not transmittable to a remote shard")

// RetryBudget is a token bucket shared by every RemoteInstance behind one
// gateway: each wire retry spends a token and each wire success refills
// RefillPerSuccess (capped at the capacity), so sustained retries are
// bounded to a fraction of successful traffic. When the bucket is empty a
// retry is refused with a typed Overloaded error instead of amplifying
// load into a partition.
type RetryBudget struct {
	mu        sync.Mutex
	tokens    float64
	capacity  float64
	refill    float64
	taken     uint64
	exhausted uint64
}

// NewRetryBudget builds a budget with capacity tokens (starting full) and
// refillPerSuccess tokens restored per successful wire query. capacity <= 0
// defaults to 64; refillPerSuccess < 0 defaults to 0.1.
func NewRetryBudget(capacity, refillPerSuccess float64) *RetryBudget {
	if capacity <= 0 {
		capacity = 64
	}
	if refillPerSuccess < 0 {
		refillPerSuccess = 0.1
	}
	return &RetryBudget{tokens: capacity, capacity: capacity, refill: refillPerSuccess}
}

// Take spends one retry token; false means the budget is exhausted and
// the retry must not happen.
func (b *RetryBudget) Take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.exhausted++
		return false
	}
	b.tokens--
	b.taken++
	return true
}

// Success refills the bucket by the per-success increment.
func (b *RetryBudget) Success() {
	b.mu.Lock()
	b.tokens += b.refill
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.mu.Unlock()
}

// RetryBudgetStats snapshots the bucket.
type RetryBudgetStats struct {
	Tokens    float64 `json:"tokens"`
	Capacity  float64 `json:"capacity"`
	Taken     uint64  `json:"taken"`
	Exhausted uint64  `json:"exhausted"`
}

// Stats snapshots the budget's tokens and counters.
func (b *RetryBudget) Stats() RetryBudgetStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return RetryBudgetStats{Tokens: b.tokens, Capacity: b.capacity, Taken: b.taken, Exhausted: b.exhausted}
}

// RemoteConfig parameterizes a RemoteInstance.
type RemoteConfig struct {
	// BaseURL is the shard's root endpoint ("http://host:port").
	BaseURL string
	// ShardID labels the shard in stats and lifecycle events; empty
	// derives it from the BaseURL host.
	ShardID string
	// Client is the pooled HTTP client; nil builds one over a cloned
	// default transport. Chaos harnesses inject a NetFault-wrapped
	// transport here.
	Client *http.Client
	// AttemptTimeout bounds one wire attempt. Each attempt's context is
	// carved from the query's once-bound deadline: min(AttemptTimeout,
	// remaining budget), so wire retries can never extend a query past
	// the deadline the gateway bound before the first attempt. Default 10s.
	AttemptTimeout time.Duration
	// Retries bounds wire-level retries per query after the first attempt.
	// Only transport-layer failures retry (resets, timeouts, torn or
	// garbled bodies — all idempotent under the shard's replay window);
	// an HTTP status is an authoritative answer and is never retried at
	// this layer. Default 2; negative disables.
	Retries int
	// Budget, when non-nil, is the gateway-wide retry budget every
	// RemoteInstance shares. Nil: retries bounded by Retries alone.
	Budget *RetryBudget
	// ProbeTimeout bounds health, stats, version and invalidation
	// round-trips. Default 2s.
	ProbeTimeout time.Duration
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.ShardID == "" {
		if u, err := url.Parse(c.BaseURL); err == nil && u.Host != "" {
			c.ShardID = u.Host
		} else {
			c.ShardID = c.BaseURL
		}
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: http.DefaultTransport.(*http.Transport).Clone()}
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	return c
}

// WireStats reports a RemoteInstance's transport counters.
type WireStats struct {
	// Attempts counts wire attempts (first tries and retries).
	Attempts uint64 `json:"attempts"`
	// Retries counts budget-funded re-attempts after a wire failure.
	Retries uint64 `json:"retries"`
	// Failures counts transport-layer failures (resets, timeouts, torn
	// bodies) — not HTTP error statuses, which are answers.
	Failures uint64 `json:"failures"`
	// Replays counts responses the shard served from its idempotency
	// window: a retry whose original executed and whose reply was lost.
	Replays uint64 `json:"replays"`
	// BudgetExhausted counts retries refused by the shared budget.
	BudgetExhausted uint64 `json:"budget_exhausted"`
	// Budget snapshots the shared bucket (nil when no budget is wired).
	Budget *RetryBudgetStats `json:"budget,omitempty"`
}

// RemoteInstance implements Instance over HTTP against a cmd/remac-serve
// shard: pooled connections, per-attempt timeouts carved from the
// once-bound query deadline, budgeted idempotent retries, and wire errors
// mapped into the resilience taxonomy so lifecycle ejection, failover and
// rejoin fire on wire evidence exactly as they do in process.
type RemoteInstance struct {
	cfg  RemoteConfig
	base string

	wireAttempts    atomic.Uint64
	wireRetries     atomic.Uint64
	wireFailures    atomic.Uint64
	replays         atomic.Uint64
	budgetExhausted atomic.Uint64
}

// NewRemote builds a remote shard client. The instance is stateless
// beyond its connection pool: respawning one (Config.Respawn) is just
// constructing a fresh client against the same URL.
func NewRemote(cfg RemoteConfig) *RemoteInstance {
	cfg = cfg.withDefaults()
	base := cfg.BaseURL
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &RemoteInstance{cfg: cfg, base: base}
}

var _ Instance = (*RemoteInstance)(nil)

// ShardID returns the instance's stats label.
func (ri *RemoteInstance) ShardID() string { return ri.cfg.ShardID }

// WireStats snapshots the transport counters.
func (ri *RemoteInstance) WireStats() WireStats {
	ws := WireStats{
		Attempts:        ri.wireAttempts.Load(),
		Retries:         ri.wireRetries.Load(),
		Failures:        ri.wireFailures.Load(),
		Replays:         ri.replays.Load(),
		BudgetExhausted: ri.budgetExhausted.Load(),
	}
	if ri.cfg.Budget != nil {
		s := ri.cfg.Budget.Stats()
		ws.Budget = &s
	}
	return ws
}

// wireError marks a transport-layer failure as retryable at this layer.
type wireError struct{ err error }

func (e *wireError) Error() string { return "gateway: wire failure: " + e.err.Error() }
func (e *wireError) Unwrap() error { return e.err }

// isWireRetryable reports whether a Do attempt failure is a transport
// fault worth a budgeted retry (an HTTP-status error never is).
func isWireRetryable(err error) bool {
	var we *wireError
	return errors.As(err, &we)
}

// wireRequest reconstructs the HTTP request body for a built query. Only
// builder-shaped queries travel: the algorithm (or raw script) plus the
// dataset rebind the same standard inputs on the far side. In-process
// chaos hooks (Probe), fault plans, and custom inputs without a dataset
// have no wire representation and fail with a typed Compile-class error
// rather than silently executing something else remotely.
func wireRequest(q serve.Query) (httpapi.QueryRequest, error) {
	bad := func(what string) (httpapi.QueryRequest, error) {
		return httpapi.QueryRequest{}, &resilience.QueryError{
			Class: resilience.Compile, Stage: "wire",
			Err: fmt.Errorf("%w: %s", ErrNotTransmittable, what),
		}
	}
	if q.Probe != nil {
		return bad("in-process probe hook set")
	}
	if q.Faults.Enabled() {
		return bad("fault-injection plan set")
	}
	if q.Dataset == "" {
		return bad("no dataset to rebind inputs from")
	}
	req := httpapi.QueryRequest{
		Algorithm:           q.Algorithm,
		Dataset:             q.Dataset,
		Iterations:          q.Iterations,
		Strategy:            httpapi.StrategyName(q.Strategy),
		MaxIterations:       q.MaxIterations,
		Recovery:            q.Recovery.String(),
		NoPlanCache:         q.NoPlanCache,
		NoIntermediateCache: q.NoIntermediateCache,
	}
	if q.Algorithm == "" {
		req.Script = q.Script
	}
	if q.Recovery == (engine.RecoveryPolicy{}) {
		// The zero policy means "server default" — don't pin "lineage"
		// over a remote shard configured with a different default.
		req.Recovery = ""
	}
	return req, nil
}

// wireBackoff is the deterministic retry delay: exponential from 2ms,
// capped, with jitter derived from the idempotency key and attempt so
// concurrent retriers do not synchronize.
func wireBackoff(key string, attempt int) time.Duration {
	base := 2 * time.Millisecond << uint(attempt-1)
	if base > 20*time.Millisecond {
		base = 20 * time.Millisecond
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	jitter := time.Duration(h.Sum64() % uint64(base))
	return base + jitter
}

// Do submits the query over the wire. The attempt loop retries only
// transport failures — each funded by the shared budget and re-sent under
// the same idempotency key, so a response lost after the shard committed
// replays the original result instead of re-executing. An HTTP error
// status parses back into the typed error the shard wrote (Retry-After
// included) and returns immediately: overload, quota and client errors
// are answers for the gateway's spill-over/failover logic, not transport
// noise.
func (ri *RemoteInstance) Do(ctx context.Context, q serve.Query) (*serve.QueryResult, error) {
	req, err := wireRequest(q)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, &resilience.QueryError{Class: resilience.Internal, Stage: "wire", Err: err}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if ri.cfg.Budget != nil && !ri.cfg.Budget.Take() {
				ri.budgetExhausted.Add(1)
				return nil, &resilience.QueryError{
					Class: resilience.Overloaded, Stage: "wire-retry",
					Err:        fmt.Errorf("%w: %w", ErrRetryBudgetExhausted, lastErr),
					RetryAfter: time.Second,
				}
			}
			ri.wireRetries.Add(1)
			t := time.NewTimer(wireBackoff(q.IdempotencyKey, attempt))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, wireCanceled(ctx, lastErr)
			}
		}
		res, err := ri.attempt(ctx, q.IdempotencyKey, payload, attempt)
		if err == nil {
			if ri.cfg.Budget != nil {
				ri.cfg.Budget.Success()
			}
			return res, nil
		}
		if !isWireRetryable(err) {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, wireCanceled(ctx, lastErr)
		}
		if attempt >= ri.cfg.Retries {
			// Wire retries exhausted: an Internal-class failure, so the
			// gateway's failover and passive ejection fire on it exactly
			// as they would on an in-process crash.
			return nil, &resilience.QueryError{
				Class: resilience.Internal, Stage: "wire",
				Err: fmt.Errorf("%w (after %d attempt(s))", lastErr, attempt+1),
			}
		}
	}
}

// wireCanceled renders a context expiry mid-transport as the typed
// Canceled-class error the deadline machinery expects.
func wireCanceled(ctx context.Context, lastErr error) error {
	cause := ctx.Err()
	if lastErr != nil {
		cause = fmt.Errorf("%w (last wire failure: %w)", ctx.Err(), lastErr)
	}
	return &resilience.QueryError{
		Class: resilience.Canceled, Stage: "wire",
		Err: fmt.Errorf("gateway: %w: %w", engine.ErrCanceled, cause),
	}
}

// maxWireBody bounds response bodies read off the wire.
const maxWireBody = 8 << 20

// attempt is one wire round-trip under a deadline carved from ctx.
func (ri *RemoteInstance) attempt(ctx context.Context, key string, payload []byte, attempt int) (*serve.QueryResult, error) {
	ri.wireAttempts.Add(1)
	timeout := ri.cfg.AttemptTimeout
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, wireCanceled(ctx, nil)
		}
		if rem < timeout {
			timeout = rem
		}
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, ri.base+"/query", bytes.NewReader(payload))
	if err != nil {
		return nil, &resilience.QueryError{Class: resilience.Internal, Stage: "wire", Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if key != "" {
		hreq.Header.Set(httpapi.IdempotencyKeyHeader, key)
	}
	hreq.Header.Set(httpapi.AttemptHeader, strconv.Itoa(attempt))
	resp, err := ri.cfg.Client.Do(hreq)
	if err != nil {
		ri.wireFailures.Add(1)
		if ctx.Err() != nil {
			return nil, wireCanceled(ctx, err)
		}
		return nil, &wireError{err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBody))
	if err != nil {
		ri.wireFailures.Add(1)
		if ctx.Err() != nil {
			return nil, wireCanceled(ctx, err)
		}
		return nil, &wireError{fmt.Errorf("reading response: %w", err)}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, httpapi.ParseError(resp.StatusCode, resp.Header, body)
	}
	var qr httpapi.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		ri.wireFailures.Add(1)
		return nil, &wireError{fmt.Errorf("garbled response body: %w", err)}
	}
	res := resultFromResponse(qr)
	if res.Replayed {
		ri.replays.Add(1)
	}
	return res, nil
}

// resultFromResponse rebuilds a serve.QueryResult from the wire shape:
// summaries and the executing shard's bitwise result hash stand in for
// the cells, which never travel.
func resultFromResponse(qr httpapi.QueryResponse) *serve.QueryResult {
	res := &serve.QueryResult{
		Iterations:         qr.Iterations,
		SimulatedSec:       qr.SimulatedSec,
		ComputeSec:         qr.ComputeSec,
		TransmitSec:        qr.TransmitSec,
		CompileSec:         qr.CompileSec,
		WallSec:            qr.WallSec,
		PlanCacheHit:       qr.PlanCacheHit,
		IntermediateHits:   qr.IntermediateHits,
		IntermediateMisses: qr.IntermediateMiss,
		SharedHits:         qr.SharedHits,
		SharedProduced:     qr.SharedProduced,
		CodedRecoveries:    qr.CodedRecoveries,
		DecodeSec:          qr.DecodeSec,
		EncodeFLOP:         qr.EncodeFLOP,
		SelectedKeys:       qr.SelectedKeys,
		FLOP:               qr.FLOP,
		Attempts:           qr.Attempts,
		Replayed:           qr.Replayed,
	}
	if len(qr.Values) > 0 {
		res.Summaries = make(map[string]serve.ValueSummary, len(qr.Values))
		for name, vs := range qr.Values {
			res.Summaries[name] = vs
		}
	}
	if qr.ResultHash != "" {
		if h, err := strconv.ParseUint(qr.ResultHash, 16, 64); err == nil {
			res.ResultHash = h
		}
	}
	return res
}

// get is one bounded GET against the shard.
func (ri *RemoteInstance) get(path string) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), ri.cfg.ProbeTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, ri.base+path, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := ri.cfg.Client.Do(hreq)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBody))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// probe reads one health endpoint; any wire failure is an unhealthy
// report — active detection fires on wire evidence.
func (ri *RemoteInstance) probe(path string) serve.Health {
	_, _, body, err := ri.get(path)
	if err != nil {
		return serve.Health{OK: false, Status: "wire: " + err.Error()}
	}
	var h serve.Health
	if err := json.Unmarshal(body, &h); err != nil {
		return serve.Health{OK: false, Status: "wire: bad probe body"}
	}
	return h
}

// Healthz probes the remote shard's liveness over the wire.
func (ri *RemoteInstance) Healthz() serve.Health { return ri.probe("/healthz") }

// Readyz probes the remote shard's readiness over the wire.
func (ri *RemoteInstance) Readyz() serve.Health { return ri.probe("/readyz") }

// Metrics reads the shard's /stats snapshot; a wire failure returns an
// empty snapshot still labeled with the shard id.
func (ri *RemoteInstance) Metrics() serve.Snapshot {
	status, _, body, err := ri.get("/stats")
	if err != nil || status != http.StatusOK {
		return serve.Snapshot{Shard: ri.cfg.ShardID}
	}
	var snap serve.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return serve.Snapshot{Shard: ri.cfg.ShardID}
	}
	if snap.Shard == "" {
		snap.Shard = ri.cfg.ShardID
	}
	return snap
}

// InvalidateDataset bumps the dataset version on the remote shard. A wire
// failure drops the bump — exactly like a crashed in-process shard — and
// DatasetVersion's lag report makes the gateway's acknowledged broadcast
// count the shard as lagged until the rejoin catch-up replays it.
func (ri *RemoteInstance) InvalidateDataset(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), ri.cfg.ProbeTimeout)
	defer cancel()
	u := ri.base + "/invalidate?dataset=" + url.QueryEscape(id)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return
	}
	resp, err := ri.cfg.Client.Do(hreq)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// DatasetVersion reads the shard's acknowledged version over the wire;
// -1 on any failure, which every catch-up loop treats as "behind and not
// acknowledging" — the broadcast moves on and the rejoin gate retries.
func (ri *RemoteInstance) DatasetVersion(id string) int64 {
	status, _, body, err := ri.get("/version?dataset=" + url.QueryEscape(id))
	if err != nil || status != http.StatusOK {
		return -1
	}
	var vr httpapi.VersionResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		return -1
	}
	return vr.Version
}

// Shutdown releases the pooled connections. The remote process has its
// own lifecycle — the gateway deliberately cannot stop it.
func (ri *RemoteInstance) Shutdown(ctx context.Context) error {
	ri.cfg.Client.CloseIdleConnections()
	return nil
}
