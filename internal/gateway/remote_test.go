package gateway

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"remac/internal/engine"
	"remac/internal/httpapi"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// startShard boots a real single-shard HTTP front-end — the exact mux
// cmd/remac-serve runs — and returns its in-process server for
// executions-counter assertions.
func startShard(t *testing.T, cfg serve.Config, mcfg httpapi.ServeHandlerConfig) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.New(cfg)
	hs := httptest.NewServer(httpapi.NewServeMux(srv, httpapi.NewQueryBuilder(engine.RecoveryPolicy{}), mcfg))
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
	})
	return srv, hs
}

// remoteQuery is a builder-shaped query a RemoteInstance can transmit.
func remoteQuery(t *testing.T, alg, dataset string, iters int) serve.Query {
	t.Helper()
	b := httpapi.NewQueryBuilder(engine.RecoveryPolicy{})
	q, err := b.Build(httpapi.QueryRequest{Algorithm: alg, Dataset: dataset, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestRemoteDoEndToEnd: a RemoteInstance executes a query on a real shard
// over HTTP and relays the server-computed bitwise hash and summaries.
func TestRemoteDoEndToEnd(t *testing.T) {
	srv, hs := startShard(t, serve.Config{Workers: 2}, httpapi.ServeHandlerConfig{})
	ri := NewRemote(RemoteConfig{BaseURL: hs.URL})
	defer ri.Shutdown(context.Background())

	q := remoteQuery(t, "DFP", "cri1", 3)
	q.IdempotencyKey = "e2e-1"
	res, err := ri.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultHash == 0 {
		t.Fatal("no result hash relayed")
	}
	if len(res.Summaries) == 0 {
		t.Fatal("no value summaries relayed")
	}
	// The wire hash must equal a local execution of the same query.
	local := serve.New(serve.Config{Workers: 2})
	defer local.Shutdown(context.Background())
	ref, err := local.Do(context.Background(), remoteQuery(t, "DFP", "cri1", 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultHash != ref.ResultHash {
		t.Fatalf("wire hash %016x != local hash %016x", res.ResultHash, ref.ResultHash)
	}
	if got := srv.Metrics().Executions; got != 1 {
		t.Fatalf("shard executions = %d, want 1", got)
	}
}

// TestRemoteDroppedResponseReplays: a response lost after the shard
// committed is retried under the same idempotency key; the shard replays
// the original result and the plan executes exactly once.
func TestRemoteDroppedResponseReplays(t *testing.T) {
	srv, hs := startShard(t, serve.Config{Workers: 2}, httpapi.ServeHandlerConfig{})
	nf := NewNetFault(nil, NetFaultConfig{Seed: 1})
	ri := NewRemote(RemoteConfig{
		BaseURL: hs.URL,
		Client:  &http.Client{Transport: nf},
		Budget:  NewRetryBudget(8, 1),
	})
	defer ri.Shutdown(context.Background())

	nf.ForceDropNext(1)
	q := remoteQuery(t, "GD", "cri1", 2)
	q.IdempotencyKey = "drop-1"
	res, err := ri.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed {
		t.Fatal("retry after a dropped response was not served as a replay")
	}
	if got := srv.Metrics().Executions; got != 1 {
		t.Fatalf("dropped-response retry executed %d times, want 1", got)
	}
	ws := ri.WireStats()
	if ws.Replays != 1 || ws.Retries != 1 {
		t.Fatalf("wire stats = %+v, want 1 replay / 1 retry", ws)
	}
	if srv.Metrics().IdemReplays != 1 {
		t.Fatalf("shard IdemReplays = %d, want 1", srv.Metrics().IdemReplays)
	}
}

// TestRemoteRetryBudgetExhaustion: when the shared budget cannot fund
// another retry, Do fails typed — Overloaded class (503) with a
// Retry-After hint and ErrRetryBudgetExhausted at the root — instead of
// hammering the wire.
func TestRemoteRetryBudgetExhaustion(t *testing.T) {
	_, hs := startShard(t, serve.Config{Workers: 2}, httpapi.ServeHandlerConfig{})
	nf := NewNetFault(nil, NetFaultConfig{Seed: 1})
	budget := NewRetryBudget(1, 0)
	ri := NewRemote(RemoteConfig{
		BaseURL: hs.URL,
		Client:  &http.Client{Transport: nf},
		Budget:  budget,
		Retries: 5,
	})
	defer ri.Shutdown(context.Background())

	nf.ForceDropNext(10)
	q := remoteQuery(t, "GD", "cri1", 2)
	q.IdempotencyKey = "budget-1"
	_, err := ri.Do(context.Background(), q)
	if err == nil {
		t.Fatal("query succeeded with every response dropped")
	}
	if !resilience.IsClass(err, resilience.Overloaded) {
		t.Fatalf("budget exhaustion class = %v, want Overloaded", err)
	}
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("error does not wrap ErrRetryBudgetExhausted: %v", err)
	}
	var qe *resilience.QueryError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("budget exhaustion carries no Retry-After: %v", err)
	}
	if ri.WireStats().BudgetExhausted != 1 {
		t.Fatalf("BudgetExhausted = %d, want 1", ri.WireStats().BudgetExhausted)
	}
	if bs := budget.Stats(); bs.Taken != 1 || bs.Exhausted != 1 {
		t.Fatalf("budget stats = %+v, want 1 taken / 1 exhausted", bs)
	}
}

// TestRemoteStatusErrorIsAuthoritative: an HTTP error status is an
// answer, not transport noise — it parses back into the shard's typed
// error and is never wire-retried.
func TestRemoteStatusErrorIsAuthoritative(t *testing.T) {
	_, hs := startShard(t, serve.Config{Workers: 2}, httpapi.ServeHandlerConfig{})
	ri := NewRemote(RemoteConfig{BaseURL: hs.URL, Retries: 5, Budget: NewRetryBudget(8, 1)})
	defer ri.Shutdown(context.Background())

	// An unknown-dataset build failure on the far side is a Compile-class
	// 400. Force it past wireRequest by faking a plausible dataset locally.
	q := remoteQuery(t, "GD", "cri1", 2)
	q.Dataset = "no-such-dataset"
	q.Algorithm = "GD"
	q.IdempotencyKey = "status-1"
	_, err := ri.Do(context.Background(), q)
	if err == nil {
		t.Fatal("unknown dataset succeeded")
	}
	if !resilience.IsClass(err, resilience.Compile) {
		t.Fatalf("remote compile failure class = %v, want Compile", err)
	}
	if ws := ri.WireStats(); ws.Attempts != 1 || ws.Retries != 0 {
		t.Fatalf("status error was wire-retried: %+v", ws)
	}
}

// TestRemoteWireExhaustionIsInternal: resets past the retry limit
// surface as an Internal-class wire failure — the signal failover and
// passive ejection key on.
func TestRemoteWireExhaustionIsInternal(t *testing.T) {
	_, hs := startShard(t, serve.Config{Workers: 2}, httpapi.ServeHandlerConfig{})
	nf := NewNetFault(nil, NetFaultConfig{Seed: 1})
	nf.SetPartition(PartitionData)
	ri := NewRemote(RemoteConfig{
		BaseURL: hs.URL,
		Client:  &http.Client{Transport: nf},
		Retries: 1,
		Budget:  NewRetryBudget(8, 1),
	})
	defer ri.Shutdown(context.Background())

	q := remoteQuery(t, "GD", "cri1", 2)
	q.IdempotencyKey = "wire-1"
	_, err := ri.Do(context.Background(), q)
	if err == nil {
		t.Fatal("partitioned query succeeded")
	}
	if !resilience.IsClass(err, resilience.Internal) {
		t.Fatalf("wire exhaustion class = %v, want Internal", err)
	}
	if !errors.Is(err, ErrNetPartition) {
		t.Fatalf("root cause lost: %v", err)
	}
	// The probe path still works under an asymmetric data partition.
	if hz := ri.Healthz(); !hz.OK {
		t.Fatalf("probe path severed by PartitionData: %+v", hz)
	}
	// Full partition severs probes too, and version reads fail to -1.
	nf.SetPartition(PartitionAll)
	if hz := ri.Healthz(); hz.OK {
		t.Fatal("probe succeeded under PartitionAll")
	}
	if v := ri.DatasetVersion("cri1"); v != -1 {
		t.Fatalf("partitioned DatasetVersion = %d, want -1", v)
	}
	nf.SetPartition(PartitionNone)
	if hz := ri.Healthz(); !hz.OK {
		t.Fatalf("healed probe still failing: %+v", hz)
	}
}

// TestRemoteDeadlineCarving: a query deadline shorter than the attempt
// timeout bounds the wire attempt; expiry surfaces as Canceled class.
func TestRemoteDeadlineCarving(t *testing.T) {
	_, hs := startShard(t, serve.Config{Workers: 1}, httpapi.ServeHandlerConfig{})
	nf := NewNetFault(nil, NetFaultConfig{Seed: 1, LatencyRate: 1, Latency: 5 * time.Second})
	ri := NewRemote(RemoteConfig{
		BaseURL:        hs.URL,
		Client:         &http.Client{Transport: nf},
		AttemptTimeout: 10 * time.Second,
	})
	defer ri.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	q := remoteQuery(t, "GD", "cri1", 2)
	q.IdempotencyKey = "deadline-1"
	start := time.Now()
	_, err := ri.Do(ctx, q)
	if err == nil {
		t.Fatal("query succeeded past its deadline")
	}
	if !resilience.IsClass(err, resilience.Canceled) {
		t.Fatalf("deadline expiry class = %v, want Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline was not carved into the attempt: took %v", elapsed)
	}
}

// TestRemoteNotTransmittable: queries with no wire representation fail
// typed and local — nothing touches the network.
func TestRemoteNotTransmittable(t *testing.T) {
	ri := NewRemote(RemoteConfig{BaseURL: "http://127.0.0.1:0"})
	defer ri.Shutdown(context.Background())
	q := serve.NewQuery("x = read(A)\nwrite(x)", nil)
	_, err := ri.Do(context.Background(), q)
	if err == nil {
		t.Fatal("dataset-less query transmitted")
	}
	if !resilience.IsClass(err, resilience.Compile) || !errors.Is(err, ErrNotTransmittable) {
		t.Fatalf("want typed Compile/ErrNotTransmittable, got %v", err)
	}
	if ri.WireStats().Attempts != 0 {
		t.Fatal("untransmittable query reached the wire")
	}
}

// TestRemoteInvalidationCatchUp: invalidations and version reads travel
// the wire, so the gateway's acknowledged broadcast works unchanged.
func TestRemoteInvalidationCatchUp(t *testing.T) {
	srv, hs := startShard(t, serve.Config{Workers: 1}, httpapi.ServeHandlerConfig{})
	ri := NewRemote(RemoteConfig{BaseURL: hs.URL})
	defer ri.Shutdown(context.Background())

	if v := ri.DatasetVersion("cri1"); v != 0 {
		t.Fatalf("fresh version = %d, want 0", v)
	}
	ri.InvalidateDataset("cri1")
	if v := ri.DatasetVersion("cri1"); v != 1 {
		t.Fatalf("post-invalidate version = %d, want 1", v)
	}
	if v := srv.DatasetVersion("cri1"); v != 1 {
		t.Fatalf("shard-side version = %d, want 1", v)
	}
}

// TestGatewayRetryAfterAggregation: when every spill target is
// overloaded, the final 503 carries the soonest Retry-After any shard
// advertised — not whichever shard was tried last.
func TestGatewayRetryAfterAggregation(t *testing.T) {
	insts, fakes := fakeFleet(3)
	for i, ra := range []time.Duration{9 * time.Second, 2 * time.Second, 6 * time.Second} {
		fakes[i].mu.Lock()
		fakes[i].fail = &resilience.QueryError{
			Class: resilience.Overloaded, Stage: "admission",
			Err: serve.ErrOverloaded, RetryAfter: ra,
		}
		fakes[i].mu.Unlock()
	}
	gw := NewWithInstances(Config{SpillOver: 2, ProbeInterval: -1}, insts)
	defer gw.Shutdown(context.Background())

	_, err := gw.Do(context.Background(), Request{Tenant: "t", Query: gatewayQuery("cri1")})
	if err == nil {
		t.Fatal("fully-overloaded fleet served a query")
	}
	if !resilience.IsClass(err, resilience.Overloaded) {
		t.Fatalf("class = %v, want Overloaded", err)
	}
	if got := retryAfterOf(err); got != 2*time.Second {
		t.Fatalf("aggregated Retry-After = %v, want the 2s minimum", got)
	}
}

// TestGatewayQuotaIsTerminal: a 429 from a shard is tenant-level
// backpressure — the gateway must not spill it across the fleet.
func TestGatewayQuotaIsTerminal(t *testing.T) {
	insts, fakes := fakeFleet(3)
	for _, f := range fakes {
		f.mu.Lock()
		f.fail = &resilience.QueryError{
			Class: resilience.Quota, Stage: "admission",
			Err: errors.New("tenant over quota"), RetryAfter: 4 * time.Second,
		}
		f.mu.Unlock()
	}
	gw := NewWithInstances(Config{SpillOver: 2, Failover: 2, ProbeInterval: -1}, insts)
	defer gw.Shutdown(context.Background())

	_, err := gw.Do(context.Background(), Request{Tenant: "t", Query: gatewayQuery("cri1")})
	if err == nil {
		t.Fatal("quota-rejected query served")
	}
	if !resilience.IsClass(err, resilience.Quota) {
		t.Fatalf("class = %v, want Quota", err)
	}
	total := 0
	for _, f := range fakes {
		total += f.attemptCount()
	}
	if total != 1 {
		t.Fatalf("quota rejection hit %d shards, want 1 (no spill-over)", total)
	}
	if got := retryAfterOf(err); got != 4*time.Second {
		t.Fatalf("quota Retry-After = %v, want the shard's 4s", got)
	}
}

// TestGatewayIdempotencyKeyStamping: the gateway stamps its request id as
// the key before the first attempt, and a failover re-sends the same key.
func TestGatewayIdempotencyKeyStamping(t *testing.T) {
	insts, fakes := fakeFleet(2)
	keys := make(chan string, 4)
	// fakeShard records nothing about keys; intercept with a wrapper.
	wrapped := make([]Instance, len(insts))
	for i, inst := range insts {
		inst := inst
		wrapped[i] = &instanceFunc{
			inner: inst,
			do: func(ctx context.Context, q serve.Query) (*serve.QueryResult, error) {
				keys <- q.IdempotencyKey
				return inst.Do(ctx, q)
			},
		}
	}
	fakes[0].setDown(true)
	fakes[1].setDown(true)
	gw := NewWithInstances(Config{Failover: 1, ProbeInterval: -1}, wrapped)
	defer gw.Shutdown(context.Background())

	_, err := gw.Do(context.Background(), Request{Tenant: "t", RequestID: "rid-key", Query: gatewayQuery("cri1")})
	if err == nil {
		t.Fatal("down fleet served")
	}
	close(keys)
	n := 0
	for k := range keys {
		n++
		if k != "rid-key" {
			t.Fatalf("attempt %d carried key %q, want the request id", n, k)
		}
	}
	if n != 2 {
		t.Fatalf("observed %d attempts, want 2 (home + failover)", n)
	}
}

// instanceFunc wraps an Instance with an interceptable Do.
type instanceFunc struct {
	inner Instance
	do    func(ctx context.Context, q serve.Query) (*serve.QueryResult, error)
}

func (i *instanceFunc) Do(ctx context.Context, q serve.Query) (*serve.QueryResult, error) {
	return i.do(ctx, q)
}
func (i *instanceFunc) InvalidateDataset(id string)        { i.inner.InvalidateDataset(id) }
func (i *instanceFunc) DatasetVersion(id string) int64     { return i.inner.DatasetVersion(id) }
func (i *instanceFunc) Metrics() serve.Snapshot            { return i.inner.Metrics() }
func (i *instanceFunc) Healthz() serve.Health              { return i.inner.Healthz() }
func (i *instanceFunc) Readyz() serve.Health               { return i.inner.Readyz() }
func (i *instanceFunc) Shutdown(ctx context.Context) error { return i.inner.Shutdown(ctx) }

// TestKillablePartition: KillPartition fails queries with the wire
// taxonomy, reports partitioned probes and -1 versions, and heals with
// shard state intact on Revive.
func TestKillablePartition(t *testing.T) {
	inner := newFakeShard("shard-0")
	k := NewKillable(inner)
	defer k.Shutdown(context.Background())

	k.InvalidateDataset("cri1")
	k.Kill(KillPartition)
	_, err := k.Do(context.Background(), gatewayQuery("cri1"))
	if err == nil {
		t.Fatal("partitioned killable served")
	}
	if !resilience.IsClass(err, resilience.Internal) || !errors.Is(err, ErrNetPartition) {
		t.Fatalf("want Internal/ErrNetPartition, got %v", err)
	}
	if hz := k.Healthz(); hz.OK || hz.Status != "partitioned" {
		t.Fatalf("partitioned Healthz = %+v", hz)
	}
	if hz := k.Readyz(); hz.OK || hz.Status != "partitioned" {
		t.Fatalf("partitioned Readyz = %+v", hz)
	}
	if v := k.DatasetVersion("cri1"); v != -1 {
		t.Fatalf("partitioned DatasetVersion = %d, want -1", v)
	}
	k.Revive()
	if v := k.DatasetVersion("cri1"); v != 1 {
		t.Fatalf("healed DatasetVersion = %d, want the pre-partition 1", v)
	}
	if _, err := k.Do(context.Background(), gatewayQuery("cri1")); err != nil {
		t.Fatalf("healed killable: %v", err)
	}
}
