package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventTransition is the Kind of a shard membership transition event
// (query events leave Kind empty).
const EventTransition = "transition"

// Event is one audit record: a query (who ran what, where it ran, how it
// ended, and what it cost) or a shard membership transition (Kind
// "transition": which shard moved between which lifecycle states, on what
// evidence). Events carry the request id so cross-shard traces correlate
// with server logs and error bodies; a passive ejection carries the
// request id of the query that tripped it.
type Event struct {
	// Seq is a gateway-assigned total order over events (1-based). The
	// asynchronous writer preserves submission order per goroutine; Seq
	// orders events globally even across concurrent submitters.
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the event's wall-clock timestamp.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Tenant that issued the query ("anonymous" when unidentified).
	Tenant string `json:"tenant"`
	// RequestID correlates the event with the HTTP request and error body.
	RequestID string `json:"request_id"`
	// CanonicalKey fingerprints the query's canonical program text
	// (formatting-independent), so identical workloads aggregate.
	CanonicalKey string `json:"canonical_key"`
	// Dataset the query addressed.
	Dataset string `json:"dataset,omitempty"`
	// Shard index the query executed on (-1 when it never reached one:
	// quota rejections, total overload).
	Shard int `json:"shard"`
	// Outcome is "ok" for success, else the resilience class string
	// ("quota", "overloaded", "compile", …).
	Outcome string `json:"outcome"`
	// Spilled marks a query served off its home shard.
	Spilled bool `json:"spilled,omitempty"`
	// Failover marks a query re-routed off a failed shard.
	Failover bool `json:"failover,omitempty"`
	// Kind distinguishes membership transitions ("transition") from query
	// events (empty).
	Kind string `json:"kind,omitempty"`
	// From / To are the lifecycle states around a transition.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Reason is the transition trigger ("probe", "passive", "respawn",
	// "rejoin") plus its evidence (probe detail, failure window size).
	Reason string `json:"reason,omitempty"`
	// FLOP is the floating-point work charged to the query's simulated
	// cluster (0 for rejections and failures).
	FLOP float64 `json:"flop"`
	// LatencySec is the gateway-observed end-to-end latency.
	LatencySec float64 `json:"latency_sec"`
}

// recordTransition submits a membership transition to the audit plane so
// operators can reconstruct any outage from GET /audit: the shard, the
// states around the move, the trigger and its evidence, and — for passive
// ejections — the request id of the query that tripped the window.
func (g *Gateway) recordTransition(shard int, from, to ShardState, reason, evidence, requestID string) {
	if g.audit == nil {
		return
	}
	ev := Event{
		Kind:      EventTransition,
		Shard:     shard,
		Tenant:    "system",
		RequestID: requestID,
		From:      from.String(),
		To:        to.String(),
		Outcome:   to.String(),
		Reason:    reason,
	}
	if evidence != "" {
		ev.Reason = reason + ": " + evidence
	}
	g.audit.submit(ev, g.cfg.Clock())
}

// Sink consumes audit events off the auditor's queue, one call per event,
// from a single goroutine. Implementations may block (a file or network
// sink); the queue absorbs bursts and Submit never blocks the serving
// path.
type Sink interface {
	Record(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Record implements Sink.
func (f SinkFunc) Record(e Event) { f(e) }

// auditor is the queued, non-blocking audit writer: Submit enqueues (or
// drops, counting) and returns immediately; a single background goroutine
// drains the queue into the in-memory tail and the optional sink. Drain
// flushes everything accepted before it and stops the writer.
type auditor struct {
	ch      chan Event
	sink    Sink // optional
	seq     atomic.Uint64
	dropped atomic.Uint64
	written atomic.Uint64

	mu      sync.Mutex
	tail    []Event // ring buffer of the most recent events
	tailCap int
	tailPos int
	wrapped bool

	done chan struct{}
}

// newAuditor starts the writer goroutine. depth bounds the queue, tailCap
// bounds the in-memory tail served by GET /audit.
func newAuditor(depth, tailCap int, sink Sink) *auditor {
	a := &auditor{
		ch:      make(chan Event, depth),
		sink:    sink,
		tail:    make([]Event, tailCap),
		tailCap: tailCap,
		done:    make(chan struct{}),
	}
	go a.run()
	return a
}

func (a *auditor) run() {
	defer close(a.done)
	for e := range a.ch {
		if a.sink != nil {
			a.sink.Record(e)
		}
		a.written.Add(1)
	}
}

// submit stamps the event (sequence + time), records it on the in-memory
// tail synchronously — so a GET /audit right after a query always sees it
// — and enqueues it for the sink without ever blocking the serving path: a
// full queue drops the sink write and counts the drop, which the stats
// surface so an undersized queue is visible rather than silent.
func (a *auditor) submit(e Event, now time.Time) {
	e.TimeUnixNano = now.UnixNano()
	// Seq is stamped under the tail mutex so the tail is ordered by Seq
	// even across concurrent submitters.
	a.mu.Lock()
	e.Seq = a.seq.Add(1)
	a.tail[a.tailPos] = e
	a.tailPos++
	if a.tailPos == a.tailCap {
		a.tailPos = 0
		a.wrapped = true
	}
	a.mu.Unlock()
	select {
	case a.ch <- e:
	default:
		a.dropped.Add(1)
	}
}

// Tail returns up to n most recent written events, oldest first.
func (a *auditor) Tail(n int) []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	var ordered []Event
	if a.wrapped {
		ordered = append(ordered, a.tail[a.tailPos:]...)
		ordered = append(ordered, a.tail[:a.tailPos]...)
	} else {
		ordered = append(ordered, a.tail[:a.tailPos]...)
	}
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	out := make([]Event, len(ordered))
	copy(out, ordered)
	return out
}

// Drain closes the queue and waits until the writer has flushed every
// accepted event into the tail and the sink. Submit must not be called
// after Drain begins.
func (a *auditor) Drain() {
	close(a.ch)
	<-a.done
}

// counters reports accepted-and-written vs dropped event totals.
func (a *auditor) counters() (written, dropped uint64) {
	return a.written.Load(), a.dropped.Load()
}
