package gateway

import (
	"sync"
	"testing"
	"time"
)

// recordingSink collects every event it is handed (mockable-sink test
// double; optionally gated so tests can wedge the writer).
type recordingSink struct {
	mu     sync.Mutex
	events []Event
	gate   chan struct{} // when non-nil, Record blocks until it closes
}

func (s *recordingSink) Record(e Event) {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *recordingSink) all() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// TestAuditorOrderedAndFlushedOnDrain: every submitted event reaches the
// sink and the tail in sequence order, and Drain flushes the queue.
func TestAuditorOrderedAndFlushedOnDrain(t *testing.T) {
	sink := &recordingSink{}
	a := newAuditor(64, 32, sink)
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10; i++ {
		a.submit(Event{Tenant: "t", RequestID: "r"}, now.Add(time.Duration(i)))
	}
	a.Drain()
	got := sink.all()
	if len(got) != 10 {
		t.Fatalf("sink saw %d events, want 10", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (ordered broadcast)", i, e.Seq, i+1)
		}
	}
	tail := a.Tail(0)
	if len(tail) != 10 {
		t.Fatalf("tail holds %d events, want 10", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail out of order at %d: %d then %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
	if written, dropped := a.counters(); written != 10 || dropped != 0 {
		t.Fatalf("counters = %d written %d dropped, want 10/0", written, dropped)
	}
}

// TestAuditorTailRingAndLimit: the tail keeps only the most recent
// tailCap events, and Tail(n) trims to the newest n.
func TestAuditorTailRingAndLimit(t *testing.T) {
	a := newAuditor(64, 4, nil)
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10; i++ {
		a.submit(Event{}, now)
	}
	a.Drain()
	tail := a.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("tail holds %d events, want 4 (ring capacity)", len(tail))
	}
	if tail[0].Seq != 7 || tail[3].Seq != 10 {
		t.Fatalf("tail spans seq %d..%d, want 7..10", tail[0].Seq, tail[3].Seq)
	}
	if got := a.Tail(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Tail(2) = %+v, want the newest two", got)
	}
}

// TestAuditorNonBlockingUnderBackpressure: a wedged sink never blocks
// submit — overflow drops are counted, and everything accepted is still
// flushed on drain.
func TestAuditorNonBlockingUnderBackpressure(t *testing.T) {
	gate := make(chan struct{})
	sink := &recordingSink{gate: gate}
	a := newAuditor(2, 8, sink)
	now := time.Unix(1_700_000_000, 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			a.submit(Event{}, now) // must never block
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submit blocked on a wedged sink")
	}
	close(gate)
	a.Drain()
	written, dropped := a.counters()
	if written+dropped != 20 {
		t.Fatalf("written %d + dropped %d != 20 submitted", written, dropped)
	}
	if dropped == 0 {
		t.Fatal("expected overflow drops with a depth-2 queue and a wedged sink")
	}
	if int(written) != len(sink.all()) {
		t.Fatalf("written counter %d != sink events %d", written, len(sink.all()))
	}
}
