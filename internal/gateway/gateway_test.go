package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"remac/internal/resilience"
	"remac/internal/serve"
)

// fakeShard is a scriptable Instance for routing tests.
type fakeShard struct {
	id string

	mu         sync.Mutex
	served     int
	attempts   int
	datasets   []string
	versions   map[string]int64
	invalOrder *[]string // shared recorder: "shardID" appended per invalidation
	overloaded bool
	fail       error
	down       bool // liveness: Do fails Internal, Healthz reports not-OK
	noAck      bool // drop invalidations (a shard that stopped acknowledging)
	deadlines  []time.Time // ctx deadline observed per Do attempt (zero when none)
	timeouts   []time.Duration // q.Timeout observed per Do attempt
}

func newFakeShard(id string) *fakeShard {
	return &fakeShard{id: id, versions: map[string]int64{}}
}

func (f *fakeShard) Do(ctx context.Context, q serve.Query) (*serve.QueryResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts++
	dl, _ := ctx.Deadline()
	f.deadlines = append(f.deadlines, dl)
	f.timeouts = append(f.timeouts, q.Timeout)
	if f.down {
		return nil, &resilience.QueryError{Class: resilience.Internal, Stage: "shard", Err: ErrShardDown}
	}
	if f.overloaded {
		return nil, &resilience.QueryError{Class: resilience.Overloaded, Stage: "admission", Err: serve.ErrOverloaded}
	}
	if f.fail != nil {
		return nil, f.fail
	}
	f.served++
	f.datasets = append(f.datasets, q.Dataset)
	return &serve.QueryResult{FLOP: 100}, nil
}

func (f *fakeShard) InvalidateDataset(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.noAck || f.down {
		return
	}
	f.versions[id]++
	if f.invalOrder != nil {
		*f.invalOrder = append(*f.invalOrder, f.id)
	}
}

func (f *fakeShard) DatasetVersion(id string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.versions[id]
}

func (f *fakeShard) Metrics() serve.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return serve.Snapshot{Shard: f.id, Completed: uint64(f.served)}
}

func (f *fakeShard) Healthz() serve.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return serve.Health{OK: false, Status: "dead"}
	}
	return serve.Health{OK: true, Status: "serving"}
}
func (f *fakeShard) Readyz() serve.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	return serve.Health{OK: !f.overloaded, Status: "serving"}
}
func (f *fakeShard) Shutdown(ctx context.Context) error { return nil }

func (f *fakeShard) servedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.served
}

func (f *fakeShard) setOverloaded(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.overloaded = v
}

func (f *fakeShard) setDown(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = v
}

func (f *fakeShard) setNoAck(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noAck = v
}

func (f *fakeShard) attemptCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

func fakeFleet(n int) ([]Instance, []*fakeShard) {
	insts := make([]Instance, n)
	fakes := make([]*fakeShard, n)
	for i := 0; i < n; i++ {
		fakes[i] = newFakeShard(fmt.Sprintf("shard-%d", i))
		insts[i] = fakes[i]
	}
	return insts, fakes
}

func gatewayQuery(dataset string) serve.Query {
	q := serve.NewQuery("x = read(A)\nwrite(x)", nil)
	q.Dataset = dataset
	return q
}

// TestGatewayAffinityRouting: every query for one dataset version lands
// on the same shard, and distinct datasets spread across the fleet.
func TestGatewayAffinityRouting(t *testing.T) {
	insts, fakes := fakeFleet(4)
	g := NewWithInstances(Config{Seed: 1}, insts)
	defer g.Shutdown(context.Background())

	for i := 0; i < 12; i++ {
		res, err := g.Do(context.Background(), Request{Tenant: "t", Query: gatewayQuery("cri1")})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if res.Spilled {
			t.Fatal("unloaded fleet spilled a query")
		}
	}
	busy := 0
	for _, f := range fakes {
		if f.servedCount() > 0 {
			busy++
			if f.servedCount() != 12 {
				t.Fatalf("dataset split across shards: shard %s served %d of 12", f.id, f.servedCount())
			}
		}
	}
	if busy != 1 {
		t.Fatalf("one dataset touched %d shards, want exactly 1", busy)
	}

	// Enough distinct datasets reach more than one shard.
	for i := 0; i < 16; i++ {
		if _, err := g.Do(context.Background(), Request{Tenant: "t", Query: gatewayQuery(fmt.Sprintf("ds-%d", i))}); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	busy = 0
	for _, f := range fakes {
		if f.servedCount() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("16 datasets landed on %d shard(s); placement is degenerate", busy)
	}
}

// TestGatewaySpilloverBounded: an overloaded home shard spills to the
// next shard in ring order (marked on the result and counted), and with
// spill-over exhausted the typed Overloaded error surfaces.
func TestGatewaySpilloverBounded(t *testing.T) {
	insts, fakes := fakeFleet(3)
	g := NewWithInstances(Config{Seed: 2, SpillOver: 1}, insts)
	defer g.Shutdown(context.Background())

	q := gatewayQuery("cri1")
	order := g.order(q)
	fakes[order[0]].setOverloaded(true)

	res, err := g.Do(context.Background(), Request{Tenant: "t", Query: q})
	if err != nil {
		t.Fatalf("Do with open home breaker: %v", err)
	}
	if !res.Spilled || res.Shard != order[1] {
		t.Fatalf("spill-over went to shard %d (spilled=%v), want %d", res.Shard, res.Spilled, order[1])
	}
	if st := g.Stats(); st.Spilled != 1 {
		t.Fatalf("Stats.Spilled = %d, want 1", st.Spilled)
	}

	// Saturate the alternate too: the bounded budget (1 spill) is spent,
	// so the third shard is never tried and the rejection surfaces typed.
	fakes[order[1]].setOverloaded(true)
	_, err = g.Do(context.Background(), Request{Tenant: "t", Query: q})
	if !resilience.IsClass(err, resilience.Overloaded) {
		t.Fatalf("exhausted spill-over returned %v, want Overloaded class", err)
	}
	if fakes[order[2]].servedCount() != 0 {
		t.Fatal("spill-over exceeded its bound")
	}
	if st := g.Stats(); st.OverloadRejected != 1 {
		t.Fatalf("Stats.OverloadRejected = %d, want 1", st.OverloadRejected)
	}
}

// TestGatewayQuotaRejectsTyped: a tenant over its quota gets a 429-typed
// Quota-class error before any shard is touched; other tenants proceed.
func TestGatewayQuotaRejectsTyped(t *testing.T) {
	insts, fakes := fakeFleet(2)
	g := NewWithInstances(Config{
		Seed:   3,
		Quotas: map[string]TenantQuota{"noisy": {QPS: 0.001, Burst: 1}},
	}, insts)
	defer g.Shutdown(context.Background())

	if _, err := g.Do(context.Background(), Request{Tenant: "noisy", Query: gatewayQuery("d")}); err != nil {
		t.Fatalf("first query within burst: %v", err)
	}
	served := fakes[0].servedCount() + fakes[1].servedCount()
	_, err := g.Do(context.Background(), Request{Tenant: "noisy", Query: gatewayQuery("d")})
	if !resilience.IsClass(err, resilience.Quota) {
		t.Fatalf("over-quota error = %v, want Quota class", err)
	}
	var qe *resilience.QueryError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("quota rejection lacks Retry-After: %+v", qe)
	}
	if got := fakes[0].servedCount() + fakes[1].servedCount(); got != served {
		t.Fatal("rejected query reached a shard")
	}
	if _, err := g.Do(context.Background(), Request{Tenant: "polite", Query: gatewayQuery("d")}); err != nil {
		t.Fatalf("other tenant rejected alongside the noisy one: %v", err)
	}
	st := g.Stats()
	if st.QuotaRejected != 1 {
		t.Fatalf("Stats.QuotaRejected = %d, want 1", st.QuotaRejected)
	}
	if ts := st.Tenants["noisy"]; ts.QuotaRejected != 1 || ts.Completed != 1 {
		t.Fatalf("noisy tenant stats = %+v, want 1 completed / 1 quota-rejected", ts)
	}
}

// TestGatewayInvalidationFanout: one InvalidateDataset bumps every shard
// in shard order before returning, versions converge exactly, and
// concurrent broadcasts serialize.
func TestGatewayInvalidationFanout(t *testing.T) {
	insts, fakes := fakeFleet(3)
	var order []string
	for _, f := range fakes {
		f.invalOrder = &order
	}
	g := NewWithInstances(Config{Seed: 4}, insts)
	defer g.Shutdown(context.Background())

	if v := g.InvalidateDataset("cri1"); v != 1 {
		t.Fatalf("first invalidation returned version %d, want 1", v)
	}
	for i, v := range g.ShardVersions("cri1") {
		if v != 1 {
			t.Fatalf("shard %d serves version %d after fan-out returned, want 1", i, v)
		}
	}
	if len(order) != 3 || order[0] != "shard-0" || order[1] != "shard-1" || order[2] != "shard-2" {
		t.Fatalf("broadcast order = %v, want shard-0,1,2", order)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.InvalidateDataset("cri1")
		}()
	}
	wg.Wait()
	if v := g.DatasetVersion("cri1"); v != 9 {
		t.Fatalf("gateway version = %d after 9 invalidations, want 9", v)
	}
	for i, v := range g.ShardVersions("cri1") {
		if v != 9 {
			t.Fatalf("shard %d at version %d, want 9", i, v)
		}
	}
	if st := g.Stats(); st.Invalidations != 9 {
		t.Fatalf("Stats.Invalidations = %d, want 9", st.Invalidations)
	}
}

// TestGatewayAuditTrail: every outcome lands on the audit plane with
// tenant, request id, canonical key, shard, outcome class, FLOP and
// latency; request ids are generated when absent and echoed when given.
func TestGatewayAuditTrail(t *testing.T) {
	insts, _ := fakeFleet(2)
	sink := &recordingSink{}
	clock := newFakeClock()
	g := NewWithInstances(Config{
		Seed:      5,
		AuditSink: sink,
		Clock: func() time.Time {
			clock.advance(time.Millisecond)
			return clock.now()
		},
		Quotas: map[string]TenantQuota{"capped": {QPS: 0.001, Burst: 1}},
	}, insts)

	res, err := g.Do(context.Background(), Request{Tenant: "alice", RequestID: "req-1", Query: gatewayQuery("cri1")})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.RequestID != "req-1" {
		t.Fatalf("explicit request id not echoed: %q", res.RequestID)
	}
	res2, err := g.Do(context.Background(), Request{Tenant: "alice", Query: gatewayQuery("cri1")})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res2.RequestID == "" {
		t.Fatal("no request id generated")
	}
	g.Do(context.Background(), Request{Tenant: "capped", Query: gatewayQuery("cri1")})
	if _, err := g.Do(context.Background(), Request{Tenant: "capped", Query: gatewayQuery("cri1")}); !resilience.IsClass(err, resilience.Quota) {
		t.Fatalf("capped tenant not rejected: %v", err)
	}

	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	events := sink.all()
	if len(events) != 4 {
		t.Fatalf("audit saw %d events, want 4", len(events))
	}
	ok := events[0]
	if ok.Tenant != "alice" || ok.RequestID != "req-1" || ok.Outcome != "ok" ||
		ok.Shard < 0 || ok.FLOP != 100 || ok.LatencySec <= 0 || ok.CanonicalKey == "" {
		t.Fatalf("success event malformed: %+v", ok)
	}
	rej := events[3]
	if rej.Outcome != resilience.Quota.String() || rej.Shard != -1 || rej.FLOP != 0 {
		t.Fatalf("quota event malformed: %+v", rej)
	}
	// The gateway tail matches the sink.
	if tail := g.Audit(10); len(tail) != 4 || tail[0].Seq != 1 {
		t.Fatalf("Audit tail = %d events starting at seq %d, want 4 from 1", len(tail), tail[0].Seq)
	}
}

// TestGatewayStatsMergesShards: per-shard snapshots surface alongside the
// merged aggregate whose counters are the shard sums.
func TestGatewayStatsMergesShards(t *testing.T) {
	insts, fakes := fakeFleet(3)
	g := NewWithInstances(Config{Seed: 6}, insts)
	defer g.Shutdown(context.Background())

	for i := 0; i < 9; i++ {
		if _, err := g.Do(context.Background(), Request{Tenant: "t", Query: gatewayQuery(fmt.Sprintf("d%d", i))}); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	st := g.Stats()
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("per-shard breakdown has %d entries, want 3", len(st.PerShard))
	}
	var sum uint64
	for i, ps := range st.PerShard {
		if ps.ID != fakes[i].id {
			t.Fatalf("shard %d labeled %q, want %q", i, ps.ID, fakes[i].id)
		}
		sum += ps.Snapshot.Completed
	}
	if sum != 9 || st.Merged.Completed != 9 {
		t.Fatalf("completed: shards sum %d, merged %d, want 9", sum, st.Merged.Completed)
	}
	if st.Routed != 9 {
		t.Fatalf("Routed = %d, want 9", st.Routed)
	}
	if ts := st.Tenants["t"]; ts.Completed != 9 || ts.FLOP != 900 {
		t.Fatalf("tenant stats = %+v, want 9 completed / 900 FLOP", ts)
	}
}

// TestGatewayRandomRoutingSpreads: the bench's control policy really does
// scatter one dataset across shards (destroying affinity by design).
func TestGatewayRandomRoutingSpreads(t *testing.T) {
	insts, fakes := fakeFleet(4)
	g := NewWithInstances(Config{Seed: 7, RouteRandom: true}, insts)
	defer g.Shutdown(context.Background())
	for i := 0; i < 40; i++ {
		if _, err := g.Do(context.Background(), Request{Tenant: "t", Query: gatewayQuery("cri1")}); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	busy := 0
	for _, f := range fakes {
		if f.servedCount() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("random routing kept one dataset on %d shard(s)", busy)
	}
}

// TestGatewayReadyz: ready while at least one shard admits, not after all
// are saturated.
func TestGatewayReadyz(t *testing.T) {
	insts, fakes := fakeFleet(2)
	g := NewWithInstances(Config{Seed: 8}, insts)
	defer g.Shutdown(context.Background())
	if h := g.Readyz(); !h.OK || h.ReadyShards != 2 {
		t.Fatalf("fresh gateway not ready: %+v", h)
	}
	fakes[0].setOverloaded(true)
	if h := g.Readyz(); !h.OK || h.ReadyShards != 1 {
		t.Fatalf("one ready shard should keep the gateway ready: %+v", h)
	}
	fakes[1].setOverloaded(true)
	if h := g.Readyz(); h.OK {
		t.Fatalf("no ready shards but gateway claims ready: %+v", h)
	}
}
