package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"remac/internal/engine"
	"remac/internal/httpapi"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// remoteStormSeed fixes the storm's fault streams and victim choices.
const remoteStormSeed uint64 = 0xBAD_0C7E7

// TestRemotePartitionChaosStorm drives the full remote transport through
// a seeded network-partition storm (run under -race in CI): three real
// remac-serve HTTP shards behind NetFault transports injecting resets,
// dropped-after-commit responses, garbled bodies and latency spikes,
// while a controller repeatedly partitions a seeded victim, drives
// ejection on wire evidence alone, broadcasts an invalidation the
// partitioned shard must miss, heals the partition and verifies catch-up
// gated rejoin. Every successful query must carry the serial reference's
// bitwise result hash, every failure must be a typed QueryError, no
// (shard, idempotency-key) pair may execute more than once, and shutdown
// must release every goroutine.
func TestRemotePartitionChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("partition storm is not short")
	}
	type workload struct {
		alg     string
		dataset string
		iters   int
	}
	// GNMF rides along to prove the Algorithm wire metadata rebinds the
	// V/W0/H0 inputs remotely (the other workloads bind A/b/H0/x0).
	workloads := []workload{
		{"DFP", "cri1", 2},
		{"GD", "cri1", 2},
		{"GNMF", "red2", 1},
	}

	// Serial single-instance reference hashes, computed through the same
	// builder the shard front-ends run.
	ref := make(map[int]uint64, len(workloads))
	direct := serve.New(serve.Config{Workers: 2, ShardID: "reference"})
	for wi, w := range workloads {
		res, err := direct.Do(context.Background(), remoteQuery(t, w.alg, w.dataset, w.iters))
		if err != nil {
			t.Fatalf("reference %s: %v", w.alg, err)
		}
		if res.ResultHash == 0 {
			t.Fatalf("reference %s produced no result hash", w.alg)
		}
		ref[wi] = res.ResultHash
	}
	if err := direct.Shutdown(context.Background()); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}

	// Per-(shard, idempotency key) execution counter, attached server-side
	// through the mux's OnQuery hook: the zero-duplicate-executions
	// assertion counts actual plan executions, not request arrivals (a
	// replayed retry arrives but never executes).
	var execMu sync.Mutex
	execCount := map[string]int{}
	countExecs := func(shardID string) func(q *serve.Query, r *http.Request) {
		return func(q *serve.Query, r *http.Request) {
			key := shardID + "|" + q.IdempotencyKey
			q.Probe = func(int) error {
				execMu.Lock()
				execCount[key]++
				execMu.Unlock()
				return nil
			}
		}
	}

	const shards = 3
	servers := make([]*serve.Server, shards)
	fronts := make([]*httptest.Server, shards)
	faults := make([]*NetFault, shards)
	budget := NewRetryBudget(256, 1)
	insts := make([]Instance, shards)
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("shard-%d", i)
		servers[i] = serve.New(serve.Config{Workers: 2, QueueDepth: 64, ShardID: id})
		fronts[i] = httptest.NewServer(httpapi.NewServeMux(
			servers[i], httpapi.NewQueryBuilder(engine.RecoveryPolicy{}),
			httpapi.ServeHandlerConfig{OnQuery: countExecs(id)},
		))
		faults[i] = NewNetFault(nil, NetFaultConfig{
			Seed:        remoteStormSeed + uint64(i),
			ResetRate:   0.04,
			DropRate:    0.04,
			GarbleRate:  0.02,
			LatencyRate: 0.05,
			Latency:     2 * time.Millisecond,
		})
		insts[i] = NewRemote(RemoteConfig{
			BaseURL:      fronts[i].URL,
			ShardID:      id,
			Client:       &http.Client{Transport: faults[i]},
			Retries:      3,
			Budget:       budget,
			ProbeTimeout: time.Second,
		})
	}
	defer func() {
		for i := 0; i < shards; i++ {
			fronts[i].Close()
			servers[i].Shutdown(context.Background())
		}
	}()

	goroutinesBefore := runtime.NumGoroutine()

	urls := make([]string, shards)
	for i := range fronts {
		urls[i] = fronts[i].URL
	}
	cfg := Config{
		Seed:            remoteStormSeed,
		SpillOver:       1,
		Failover:        2,
		EjectAfter:      2,
		PassiveFailures: 2,
		RejoinProbes:    1,
		ProbeTimeout:    500 * time.Millisecond,
		Respawn: func(i int, id string) Instance {
			// A remote respawn is a fresh client at the same URL, through
			// the same (possibly still partitioned) network.
			return NewRemote(RemoteConfig{
				BaseURL:      urls[i],
				ShardID:      id,
				Client:       &http.Client{Transport: faults[i]},
				Retries:      3,
				Budget:       budget,
				ProbeTimeout: time.Second,
			})
		},
	}
	g := NewWithInstances(cfg, insts)

	// Concurrent clients replaying the workloads through the storm.
	type outcome struct {
		wi  int
		res *serve.QueryResult
		err error
	}
	const clients, perClient = 6, 10
	outcomes := make([]outcome, 0, clients*perClient)
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				wi := (c + k) % len(workloads)
				w := workloads[wi]
				q := remoteQuery(t, w.alg, w.dataset, w.iters)
				res, err := g.Do(context.Background(), Request{
					Tenant:    fmt.Sprintf("tenant-%d", c),
					RequestID: fmt.Sprintf("rstorm-%d-%d", c, k),
					Query:     q,
				})
				o := outcome{wi: wi, err: err}
				if err == nil {
					o.res = res.QueryResult
				}
				outMu.Lock()
				outcomes = append(outcomes, o)
				outMu.Unlock()
			}
		}(c)
	}

	// Controller: two seeded partition → eject → invalidate → heal →
	// rejoin cycles. Everything the lifecycle learns about the victim it
	// learns over the wire.
	for cycle := 0; cycle < 2; cycle++ {
		victim := int(chaosMix(remoteStormSeed+uint64(cycle)) % shards)
		ejBefore := g.Stats().Ejections
		faults[victim].SetPartition(PartitionAll)

		for r := 0; r < cfg.EjectAfter && g.Stats().Ejections == ejBefore; r++ {
			g.ProbeNow()
		}
		if g.Stats().Ejections == ejBefore {
			t.Fatalf("cycle %d: partitioned shard %d not ejected within EjectAfter=%d probe rounds",
				cycle, victim, cfg.EjectAfter)
		}

		// The broadcast crosses the wire to the live shards; the
		// partitioned victim's POST /invalidate is blackholed.
		want := g.InvalidateDataset("cri1")
		if got := g.ShardVersions("cri1")[victim]; got >= want {
			t.Fatalf("cycle %d: partitioned shard acknowledged a broadcast it cannot have seen (version %d)",
				cycle, got)
		}

		// While partitioned, rejoin must stay gated: version reads fail to
		// -1, so catch-up cannot confirm.
		for r := 0; r < 3; r++ {
			g.ProbeNow()
		}
		if got := g.ShardState(victim); got == ShardHealthy {
			t.Fatalf("cycle %d: shard %d readmitted while still partitioned", cycle, victim)
		}

		faults[victim].SetPartition(PartitionNone)
		for r := 0; r < 6 && g.ShardState(victim) != ShardHealthy; r++ {
			g.ProbeNow()
		}
		if got := g.ShardState(victim); got != ShardHealthy {
			t.Fatalf("cycle %d: shard %d state %v after heal, want healthy", cycle, victim, got)
		}
		if got := g.ShardVersions("cri1")[victim]; got != want {
			t.Fatalf("cycle %d: shard %d readmitted at version %d, want broadcast version %d",
				cycle, victim, got, want)
		}
	}
	wg.Wait()

	// Every success must carry the reference hash; every failure must be
	// typed; there is no third kind of outcome.
	success, failures, replays := 0, 0, 0
	for _, o := range outcomes {
		if o.err == nil {
			success++
			if o.res.Replayed {
				replays++
			}
			if o.res.ResultHash != ref[o.wi] {
				t.Fatalf("successful %s query hash %016x != serial reference %016x",
					workloads[o.wi].alg, o.res.ResultHash, ref[o.wi])
			}
			continue
		}
		failures++
		var qe *resilience.QueryError
		if !errors.As(o.err, &qe) {
			t.Fatalf("silent failure: untyped error %v", o.err)
		}
		switch qe.Class {
		case resilience.Internal, resilience.Overloaded, resilience.Canceled:
		default:
			t.Fatalf("unexpected failure class %v: %v", qe.Class, o.err)
		}
	}
	if len(outcomes) != clients*perClient {
		t.Fatalf("lost outcomes: %d recorded, want %d", len(outcomes), clients*perClient)
	}
	if success == 0 {
		t.Fatal("storm produced zero successes")
	}

	// Zero duplicate executions: no (shard, key) pair ran the plan twice,
	// no matter how many times the wire forced a re-send.
	execMu.Lock()
	for key, n := range execCount {
		if n > 1 {
			t.Errorf("duplicate execution: %s ran %d times", key, n)
		}
	}
	execMu.Unlock()

	// Deterministic replay epilogue: force one dropped-after-commit
	// response on shard 0 and resubmit through its RemoteInstance — the
	// shard must answer from its idempotency window.
	idemBefore := servers[0].Metrics().IdemReplays
	faults[0].ForceDropNext(1)
	epi := remoteQuery(t, "GD", "cri1", 2)
	epi.IdempotencyKey = "rstorm-epilogue"
	ri0 := g.instance(0)
	res, err := ri0.Do(context.Background(), epi)
	if err != nil {
		t.Fatalf("epilogue: %v", err)
	}
	if !res.Replayed {
		t.Fatal("epilogue: forced drop was not answered by a replay")
	}
	if got := servers[0].Metrics().IdemReplays; got != idemBefore+1 {
		t.Fatalf("epilogue: shard IdemReplays %d, want %d", got, idemBefore+1)
	}

	var drops, garbles uint64
	for i := range faults {
		c := faults[i].Counters()
		drops += c.Drops
		garbles += c.Garbles
	}
	t.Logf("storm: %d ok (%d replayed), %d typed failures; wire injected %d drops, %d garbles; budget %+v",
		success, replays, failures, drops, garbles, budget.Stats())

	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < shards; i++ {
		fronts[i].Close()
		if err := servers[i].Shutdown(context.Background()); err != nil {
			t.Fatalf("shard %d shutdown: %v", i, err)
		}
	}

	// Zero goroutine leaks once the tier, the HTTP servers and the pooled
	// clients have all unwound.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gor := runtime.NumGoroutine(); gor <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
