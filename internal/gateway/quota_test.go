package gateway

import (
	"errors"
	"testing"
	"time"

	"remac/internal/resilience"
)

// fakeClock is a manually advanced clock for quota tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time           { return c.t }
func (c *fakeClock) advance(d time.Duration)  { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func mustAdmit(t *testing.T, qs *quotas, tenant string) func() {
	t.Helper()
	rel, err := qs.admit(tenant)
	if err != nil {
		t.Fatalf("admit(%s): %v", tenant, err)
	}
	return rel
}

// TestQuotaRateLimit: the token bucket enforces QPS+burst, rejects with a
// typed Quota-class error carrying a positive Retry-After, and refills
// with the clock.
func TestQuotaRateLimit(t *testing.T) {
	clock := newFakeClock()
	qs := newQuotas(map[string]TenantQuota{"t": {QPS: 2, Burst: 2}}, TenantQuota{}, clock.now)

	mustAdmit(t, qs, "t")()
	mustAdmit(t, qs, "t")()
	_, err := qs.admit("t")
	if err == nil {
		t.Fatal("third admit within the burst succeeded")
	}
	if !resilience.IsClass(err, resilience.Quota) {
		t.Fatalf("rejection class = %v, want Quota", err)
	}
	if !errors.Is(err, ErrQuotaExceeded) || !errors.Is(err, resilience.ErrQuota) {
		t.Fatalf("rejection does not match ErrQuotaExceeded/resilience.ErrQuota: %v", err)
	}
	var qe *resilience.QueryError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("rejection carries no Retry-After hint: %+v", qe)
	}

	// Half a second at 2 QPS refills one token.
	clock.advance(500 * time.Millisecond)
	mustAdmit(t, qs, "t")()
	if _, err := qs.admit("t"); err == nil {
		t.Fatal("bucket admitted beyond its refill")
	}
}

// TestQuotaConcurrencyLimit: MaxConcurrent caps in-flight queries; slots
// free on release, and double-release is harmless.
func TestQuotaConcurrencyLimit(t *testing.T) {
	clock := newFakeClock()
	qs := newQuotas(nil, TenantQuota{MaxConcurrent: 2}, clock.now)

	rel1 := mustAdmit(t, qs, "t")
	rel2 := mustAdmit(t, qs, "t")
	if _, err := qs.admit("t"); !resilience.IsClass(err, resilience.Quota) {
		t.Fatalf("over-concurrency admit: err = %v, want Quota class", err)
	}
	rel1()
	rel1() // double release must not free a second slot
	rel3 := mustAdmit(t, qs, "t")
	if _, err := qs.admit("t"); err == nil {
		t.Fatal("double-release freed an extra slot")
	}
	rel2()
	rel3()
}

// TestQuotaDefaultUnlimited: the zero quota never rejects, and tenants
// are isolated — one tenant's exhaustion does not touch another's bucket.
func TestQuotaDefaultUnlimitedAndIsolated(t *testing.T) {
	clock := newFakeClock()
	qs := newQuotas(map[string]TenantQuota{"limited": {QPS: 1, Burst: 1}}, TenantQuota{}, clock.now)
	for i := 0; i < 100; i++ {
		mustAdmit(t, qs, "free")()
	}
	mustAdmit(t, qs, "limited")()
	if _, err := qs.admit("limited"); err == nil {
		t.Fatal("limited tenant's bucket did not empty")
	}
	// The limited tenant's exhaustion leaves "free" untouched.
	mustAdmit(t, qs, "free")()
}

// TestQuotaBurstDefault: an unset Burst defaults to ceil(QPS), never 0.
func TestQuotaBurstDefault(t *testing.T) {
	q := TenantQuota{QPS: 2.5}.withDefaults()
	if q.Burst != 3 {
		t.Fatalf("Burst default = %d, want 3", q.Burst)
	}
	q = TenantQuota{QPS: 0.25}.withDefaults()
	if q.Burst != 1 {
		t.Fatalf("Burst default for fractional QPS = %d, want 1", q.Burst)
	}
}
