package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over shard indices: each shard owns
// vnodes virtual points, and a routing key maps to the first point at or
// clockwise after its hash. Virtual nodes smooth the per-shard key share
// (the classic ~1/sqrt(vnodes) imbalance bound), and the seed perturbs
// every point so tests can exercise different placements — and a future
// deployment can re-roll placement without code changes — while any fixed
// seed keeps placement fully deterministic across processes.
//
// Routing on dataset@version (see Gateway.routeKey) is what makes shard
// scale-out preserve cache locality: every query touching one dataset
// version lands on the same home shard, so that shard's plan cache,
// intermediate cache and MQO batches see the whole overlapping stream
// instead of 1/N of it.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
	seed   uint64
}

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the shard that owns it.
type ringPoint struct {
	hash  uint64
	shard int
}

// newRing builds the ring for shards instances with vnodes virtual points
// each. shards and vnodes must be positive.
func newRing(shards, vnodes int, seed uint64) *ring {
	r := &ring{shards: shards, seed: seed, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := hashKey(seed, fmt.Sprintf("shard%d/vnode%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break deterministically by shard.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// hashKey is FNV-64a over the seed bytes followed by the key bytes, run
// through a SplitMix64 finalizer. Raw FNV clusters badly on the short,
// near-identical strings this ring hashes (vnode labels, "key-%d"-style
// dataset ids): correlated inputs land in correlated hash regions and
// whole shards end up owning no keys. The finalizer's avalanche breaks
// that correlation while keeping the function deterministic.
func hashKey(seed uint64, key string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// order returns the full preference order for key: the home shard (owner
// of the first point clockwise from the key's hash), then each further
// distinct shard in ring order. Spill-over routing walks this list, so a
// key displaced by an overloaded home always lands on the same alternate
// across the fleet.
func (r *ring) order(key string) []int {
	h := hashKey(r.seed, key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
