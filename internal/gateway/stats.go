package gateway

import (
	"sort"

	"remac/internal/resilience"
	"remac/internal/serve"
)

// tenantLatencyWindow bounds each tenant's sliding latency window.
const tenantLatencyWindow = 256

// tenantStats is one tenant's live accounting.
type tenantStats struct {
	queries   uint64
	completed uint64
	failed    uint64
	quotaRej  uint64
	flop      float64

	lat     [tenantLatencyWindow]float64
	latIdx  int
	latFull bool
}

// tenantFinish folds one settled request into its tenant's stats. Quota
// rejections never enter the latency window (they settle in microseconds
// and would drown the signal the per-tenant percentiles exist for:
// whether real queries of this tenant are getting slower).
func (g *Gateway) tenantFinish(tenant string, latencySec, flop float64, err error) {
	g.tenantMu.Lock()
	defer g.tenantMu.Unlock()
	ts, ok := g.tenants[tenant]
	if !ok {
		ts = &tenantStats{}
		g.tenants[tenant] = ts
	}
	ts.queries++
	switch {
	case err == nil:
		ts.completed++
		ts.flop += flop
		ts.lat[ts.latIdx] = latencySec
		ts.latIdx++
		if ts.latIdx == tenantLatencyWindow {
			ts.latIdx = 0
			ts.latFull = true
		}
	case resilience.IsClass(err, resilience.Quota):
		ts.quotaRej++
	default:
		ts.failed++
	}
}

// TenantStats is one tenant's aggregate view in Stats.
type TenantStats struct {
	Queries   uint64 `json:"queries"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// QuotaRejected counts 429-typed admissions denials.
	QuotaRejected uint64 `json:"quota_rejected"`
	// FLOP is the total charged floating-point work — the audit plane's
	// per-event cost, aggregated.
	FLOP float64 `json:"flop"`
	// Latency percentiles over the tenant's recent completed queries.
	LatencyP50Sec float64 `json:"latency_p50_sec"`
	LatencyP95Sec float64 `json:"latency_p95_sec"`
}

// ShardStats pairs a shard's identity with its metrics snapshot and
// lifecycle view.
type ShardStats struct {
	Shard     int            `json:"shard"`
	ID        string         `json:"id"`
	Lifecycle ShardLifecycle `json:"lifecycle"`
	Snapshot  serve.Snapshot `json:"snapshot"`
	// Wire reports transport counters for remote shards (nil for
	// in-process instances).
	Wire *WireStats `json:"wire,omitempty"`
}

// Stats is the gateway's aggregate /stats payload: routing counters, the
// merged cross-shard snapshot, and per-shard / per-tenant breakdowns.
type Stats struct {
	Shards int `json:"shards"`
	// Routed counts successfully served queries; Spilled the subset served
	// off their home shard; FailedOver the subset re-routed off a failed
	// shard.
	Routed     uint64 `json:"routed"`
	Spilled    uint64 `json:"spilled"`
	FailedOver uint64 `json:"failed_over"`
	// QuotaRejected counts tenant-quota denials (429); OverloadRejected
	// counts whole-tier overload failures that exhausted spill-over (503);
	// FailoverExhausted counts queries whose every failover attempt also
	// failed; DeadlineExceeded counts queries whose per-query deadline ran
	// out across attempts (504).
	QuotaRejected     uint64 `json:"quota_rejected"`
	OverloadRejected  uint64 `json:"overload_rejected"`
	FailoverExhausted uint64 `json:"failover_exhausted"`
	DeadlineExceeded  uint64 `json:"deadline_exceeded"`
	// Invalidations counts acknowledged invalidation broadcasts;
	// InvalidationsLagged counts shard catch-ups that a dead shard failed
	// to acknowledge (repaired by the rejoin gate before readmission).
	Invalidations       uint64 `json:"invalidations"`
	InvalidationsLagged uint64 `json:"invalidations_lagged"`
	// Ejections / Respawns / Rejoins count lifecycle transitions across
	// the fleet.
	Ejections uint64 `json:"ejections"`
	Respawns  uint64 `json:"respawns"`
	Rejoins   uint64 `json:"rejoins"`
	// AuditWritten / AuditDropped report audit-plane flow; drops mean the
	// queue is undersized for the traffic.
	AuditWritten uint64 `json:"audit_written"`
	AuditDropped uint64 `json:"audit_dropped"`

	// Merged is the cross-shard aggregate (serve.MergeSnapshots).
	Merged serve.Snapshot `json:"merged"`
	// PerShard breaks the same counters down by shard.
	PerShard []ShardStats `json:"per_shard"`
	// Tenants breaks traffic down by tenant.
	Tenants map[string]TenantStats `json:"tenants"`
}

// Stats assembles the aggregate view: every shard's snapshot (merged and
// per-shard), the routing and audit counters, and per-tenant breakdowns.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Shards:              len(g.ids),
		Routed:              g.routed.Load(),
		Spilled:             g.spilled.Load(),
		FailedOver:          g.failedOver.Load(),
		QuotaRejected:       g.quotaRej.Load(),
		OverloadRejected:    g.overloadRej.Load(),
		FailoverExhausted:   g.failoverExh.Load(),
		DeadlineExceeded:    g.deadlineRej.Load(),
		Invalidations:       g.invals.Load(),
		InvalidationsLagged: g.invalLagged.Load(),
		Ejections:           g.ejections.Load(),
		Respawns:            g.respawns.Load(),
		Rejoins:             g.rejoins.Load(),
		Tenants:             map[string]TenantStats{},
	}
	if g.audit != nil {
		st.AuditWritten, st.AuditDropped = g.audit.counters()
	}
	snaps := make([]serve.Snapshot, len(g.ids))
	for i := range snaps {
		inst := g.instance(i)
		snaps[i] = inst.Metrics()
		ss := ShardStats{
			Shard: i, ID: g.ids[i], Lifecycle: g.life.view(i), Snapshot: snaps[i],
		}
		if ri, ok := inst.(*RemoteInstance); ok {
			ws := ri.WireStats()
			ss.Wire = &ws
		}
		st.PerShard = append(st.PerShard, ss)
	}
	st.Merged = serve.MergeSnapshots(snaps...)
	g.tenantMu.Lock()
	for name, ts := range g.tenants {
		out := TenantStats{
			Queries:       ts.queries,
			Completed:     ts.completed,
			Failed:        ts.failed,
			QuotaRejected: ts.quotaRej,
			FLOP:          ts.flop,
		}
		n := ts.latIdx
		if ts.latFull {
			n = tenantLatencyWindow
		}
		if n > 0 {
			window := make([]float64, n)
			copy(window, ts.lat[:n])
			sort.Float64s(window)
			out.LatencyP50Sec = quantileOf(window, 0.50)
			out.LatencyP95Sec = quantileOf(window, 0.95)
		}
		st.Tenants[name] = out
	}
	g.tenantMu.Unlock()
	return st
}

// quantileOf reads the nearest-rank percentile from a sorted slice.
func quantileOf(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
