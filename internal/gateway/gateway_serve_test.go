package gateway

import (
	"context"
	"math"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/data"
	"remac/internal/engine"
	"remac/internal/serve"
)

// serveTestQuery builds a real workload query (mirrors the serve package's
// test helper, which is unexported).
func serveTestQuery(t *testing.T, alg algorithms.Name, dsName string, iters int) serve.Query {
	t.Helper()
	src, err := algorithms.Script(alg, iters)
	if err != nil {
		t.Fatal(err)
	}
	ds := data.MustLoad(dsName)
	ins := map[string]engine.Input{
		"A":  {Data: ds.A, VRows: ds.VRows, VCols: ds.VCols},
		"b":  {Data: ds.Label(), VRows: ds.VRows, VCols: 1},
		"H0": {Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols},
		"x0": {Data: ds.InitialX(), VRows: ds.VCols, VCols: 1},
	}
	q := serve.NewQuery(src, ins)
	q.Dataset = dsName
	q.Iterations = iters
	return q
}

// TestGatewayServesRealShardsBitwiseIdentical: a query routed through a
// 2-shard gateway returns bitwise the same values as a direct single
// serve.Server run, the repeat hits the home shard's plan cache, and
// invalidation fan-out reaches both real shards.
func TestGatewayServesRealShardsBitwiseIdentical(t *testing.T) {
	q := serveTestQuery(t, algorithms.DFP, "cri1", 3)

	direct := serve.New(serve.Config{Workers: 2})
	want, err := direct.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("direct serve: %v", err)
	}
	if err := direct.Shutdown(context.Background()); err != nil {
		t.Fatalf("direct shutdown: %v", err)
	}

	g := New(Config{Shards: 2, Serve: serve.Config{Workers: 2}, Seed: 11})
	res1, err := g.Do(context.Background(), Request{Tenant: "alice", Query: q})
	if err != nil {
		t.Fatalf("gateway Do: %v", err)
	}
	res2, err := g.Do(context.Background(), Request{Tenant: "alice", Query: q})
	if err != nil {
		t.Fatalf("gateway repeat Do: %v", err)
	}

	for name, m := range want.Values {
		gm, ok := res1.Values[name]
		if !ok {
			t.Fatalf("gateway result missing variable %s", name)
		}
		if m.Rows() != gm.Rows() || m.Cols() != gm.Cols() {
			t.Fatalf("variable %s shape differs", name)
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if math.Float64bits(m.At(i, j)) != math.Float64bits(gm.At(i, j)) {
					t.Fatalf("variable %s differs bitwise at (%d,%d)", name, i, j)
				}
			}
		}
	}

	if res1.Shard != res2.Shard {
		t.Fatalf("affinity broken on real shards: %d then %d", res1.Shard, res2.Shard)
	}
	if !res2.PlanCacheHit {
		t.Fatal("repeat on the home shard missed the plan cache")
	}

	v := g.InvalidateDataset("cri1")
	if v != 1 {
		t.Fatalf("invalidation version = %d, want 1", v)
	}
	for i, sv := range g.ShardVersions("cri1") {
		if sv != v {
			t.Fatalf("real shard %d at version %d after fan-out returned, want %d", i, sv, v)
		}
	}

	st := g.Stats()
	if st.Merged.Completed != 2 {
		t.Fatalf("merged Completed = %d, want 2", st.Merged.Completed)
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("gateway shutdown: %v", err)
	}
}
