// Package gateway is the sharded multi-node serving tier: a front-end
// that routes queries across several serve.Server instances with
// dataset-affine consistent-hash placement (so plan/intermediate/MQO
// cache locality survives scale-out), layers per-tenant admission quotas
// above each shard's circuit breaker, fans dataset invalidations out to
// every shard with an acknowledged ordered broadcast, and records every
// query on an audit plane (who ran what, where, at what cost).
//
// Shards are in-process serve.Server instances behind the Instance
// interface, so tests and benches stay hermetic while cmd/remac-gateway
// exposes the same tier over HTTP. Routing is deterministic: the ring's
// seeded placement plus ordered spill-over means any two gateways with
// the same configuration route a key identically.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"remac/internal/lang"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// Instance is one serving shard as the gateway sees it. *serve.Server
// implements it; tests substitute fakes.
type Instance interface {
	Do(ctx context.Context, q serve.Query) (*serve.QueryResult, error)
	InvalidateDataset(id string)
	DatasetVersion(id string) int64
	Metrics() serve.Snapshot
	Healthz() serve.Health
	Readyz() serve.Health
	Shutdown(ctx context.Context) error
}

var _ Instance = (*serve.Server)(nil)

// Config parameterizes a Gateway. The zero value of every optional field
// picks a sensible default.
type Config struct {
	// Shards is the number of in-process serve.Server instances to run
	// (ignored by NewWithInstances). Default 2.
	Shards int
	// Serve configures each spawned shard; ShardID is overwritten per
	// shard ("shard-0", "shard-1", …).
	Serve serve.Config
	// VirtualNodes per shard on the consistent-hash ring. Default 64.
	VirtualNodes int
	// Seed perturbs ring placement (any fixed value is deterministic).
	Seed uint64
	// SpillOver bounds how many alternate shards a query may try after its
	// home shard rejects it with an Overloaded-class error (breaker open
	// or queue saturated). 0 disables spill-over; default 1. The ring's
	// preference order makes the alternates deterministic.
	SpillOver int
	// RouteRandom replaces affinity routing with seeded pseudo-random
	// shard choice. It exists for the shard bench's control arm — random
	// routing destroys cache locality by construction — and for A/B
	// measurements; production configurations want affinity.
	RouteRandom bool

	// Quotas maps tenant name to its admission quota; tenants not listed
	// get DefaultQuota. A zero quota is unlimited.
	Quotas map[string]TenantQuota
	// DefaultQuota applies to tenants without an explicit entry.
	DefaultQuota TenantQuota

	// AuditDepth bounds the audit queue (default 1024); a full queue drops
	// events (counted) rather than blocking the serving path. Negative
	// disables the audit plane entirely.
	AuditDepth int
	// AuditTail bounds the in-memory event tail served by Audit (default
	// 256).
	AuditTail int
	// AuditSink, when non-nil, additionally receives every event from the
	// single writer goroutine (a JSONL file, a test recorder, …).
	AuditSink Sink

	// Clock is injectable for tests (quota refill and audit timestamps).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.VirtualNodes == 0 {
		c.VirtualNodes = 64
	}
	if c.SpillOver == 0 {
		c.SpillOver = 1
	}
	if c.SpillOver < 0 {
		c.SpillOver = 0
	}
	if c.AuditDepth == 0 {
		c.AuditDepth = 1024
	}
	if c.AuditTail <= 0 {
		c.AuditTail = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Request is one query submission through the gateway.
type Request struct {
	// Tenant identifies the submitting tenant for quotas, audit and
	// per-tenant stats; empty maps to "anonymous".
	Tenant string
	// RequestID correlates this request across the gateway, the shard and
	// the audit plane; empty generates one. It is echoed on the Result and
	// inside error bodies by the HTTP front-ends.
	RequestID string
	// Query is the underlying serving query. Query.Dataset is also the
	// routing key (with the gateway's dataset version appended).
	Query serve.Query
}

// Result is a gateway-served query result: the shard outcome plus routing
// metadata.
type Result struct {
	*serve.QueryResult
	// Shard is the index of the instance that served the query; ShardID
	// its metrics label.
	Shard   int
	ShardID string
	// Spilled marks a query served off its home shard because the home
	// rejected it as overloaded.
	Spilled bool
	// RequestID is the propagated (or generated) request id.
	RequestID string
}

// Gateway routes queries across shards. Create with New (spawns
// in-process serve.Servers) or NewWithInstances (caller-provided shards),
// submit with Do, stop with Shutdown.
type Gateway struct {
	cfg    Config
	shards []Instance
	ids    []string
	ring   *ring
	quotas *quotas
	audit  *auditor

	routeSeq atomic.Uint64 // RouteRandom stream position

	invMu    sync.Mutex // serializes invalidation broadcasts
	verMu    sync.Mutex
	versions map[string]int64

	routed      atomic.Uint64
	spilled     atomic.Uint64
	quotaRej    atomic.Uint64
	overloadRej atomic.Uint64
	invals      atomic.Uint64

	tenantMu sync.Mutex
	tenants  map[string]*tenantStats
}

// New builds a gateway running cfg.Shards in-process serve.Server shards.
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	shards := make([]Instance, cfg.Shards)
	ids := make([]string, cfg.Shards)
	for i := range shards {
		scfg := cfg.Serve
		scfg.ShardID = fmt.Sprintf("shard-%d", i)
		ids[i] = scfg.ShardID
		shards[i] = serve.New(scfg)
	}
	return newGateway(cfg, shards, ids)
}

// NewWithInstances builds a gateway over caller-provided shards (tests,
// or a future remote-instance client). cfg.Shards is ignored.
func NewWithInstances(cfg Config, instances []Instance) *Gateway {
	if len(instances) == 0 {
		panic("gateway: NewWithInstances requires at least one instance")
	}
	cfg.Shards = len(instances)
	cfg = cfg.withDefaults()
	ids := make([]string, len(instances))
	for i := range instances {
		if id := instances[i].Metrics().Shard; id != "" {
			ids[i] = id
		} else {
			ids[i] = fmt.Sprintf("shard-%d", i)
		}
	}
	return newGateway(cfg, instances, ids)
}

func newGateway(cfg Config, shards []Instance, ids []string) *Gateway {
	g := &Gateway{
		cfg:      cfg,
		shards:   shards,
		ids:      ids,
		ring:     newRing(len(shards), cfg.VirtualNodes, cfg.Seed),
		quotas:   newQuotas(cfg.Quotas, cfg.DefaultQuota, cfg.Clock),
		versions: map[string]int64{},
		tenants:  map[string]*tenantStats{},
	}
	if cfg.AuditDepth > 0 {
		g.audit = newAuditor(cfg.AuditDepth, cfg.AuditTail, cfg.AuditSink)
	}
	return g
}

// Shards returns the number of shards behind the gateway.
func (g *Gateway) Shards() int { return len(g.shards) }

// routeKey is the ring key for a query: dataset@version, so every query
// touching one dataset version shares a home shard (and with it the plan
// cache, intermediate cache and MQO batches warmed by its siblings).
// After an invalidation bumps the version the key changes — placement
// deliberately re-rolls, which is free because the bump already made every
// cached value unreachable. Dataset-less queries route by canonical
// program text so identical scripts still colocate.
func (g *Gateway) routeKey(q serve.Query) string {
	if q.Dataset == "" {
		return "script:" + canonicalKey(q.Script)
	}
	return fmt.Sprintf("%s@%d", q.Dataset, g.DatasetVersion(q.Dataset))
}

// canonicalKey fingerprints a script's canonical token stream (falling
// back to the raw text when it does not parse — the shard will return the
// compile error; the audit trail still wants a stable key).
func canonicalKey(script string) string {
	text, err := lang.Canonical(script)
	if err != nil {
		text = script
	}
	h := fnv.New64a()
	h.Write([]byte(text))
	return fmt.Sprintf("%016x", h.Sum64())
}

// order returns the shard preference order for a query under the
// configured routing policy.
func (g *Gateway) order(q serve.Query) []int {
	if !g.cfg.RouteRandom {
		return g.ring.order(g.routeKey(q))
	}
	// Seeded pseudo-random (SplitMix64 over a stream counter): uniform,
	// deterministic for a given seed and call sequence, and cache-blind.
	x := g.cfg.Seed + 0x9e3779b97f4a7c15*(g.routeSeq.Add(1))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	home := int(x % uint64(len(g.shards)))
	out := make([]int, len(g.shards))
	for i := range out {
		out[i] = (home + i) % len(g.shards)
	}
	return out
}

// Do routes one request: tenant quota admission, then the home shard from
// the ring, spilling over to the next shards in preference order (at most
// cfg.SpillOver of them) when a shard rejects with an Overloaded-class
// error. Every outcome — success, quota rejection, overload, failure — is
// recorded on the audit plane with the tenant, canonical query key,
// shard, outcome class, charged FLOP and latency.
func (g *Gateway) Do(ctx context.Context, req Request) (*Result, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	rid := req.RequestID
	if rid == "" {
		rid = NewRequestID()
	}
	start := g.cfg.Clock()
	ev := Event{
		Tenant:       tenant,
		RequestID:    rid,
		CanonicalKey: canonicalKey(req.Query.Script),
		Dataset:      req.Query.Dataset,
		Shard:        -1,
	}

	release, err := g.quotas.admit(tenant)
	if err != nil {
		g.quotaRej.Add(1)
		g.tenantFinish(tenant, 0, 0, err)
		g.auditFinish(ev, start, err)
		return nil, err
	}
	defer release()

	order := g.order(req.Query)
	tries := 1 + g.cfg.SpillOver
	if tries > len(order) {
		tries = len(order)
	}
	var res *serve.QueryResult
	var lastErr error
	shard := -1
	for i := 0; i < tries; i++ {
		res, lastErr = g.shards[order[i]].Do(ctx, req.Query)
		if lastErr != nil && resilience.IsClass(lastErr, resilience.Overloaded) && i+1 < tries {
			// Home (or previous alternate) is saturated or its breaker is
			// open: bounded spill-over to the next shard in ring order.
			continue
		}
		shard = order[i]
		break
	}
	ev.Shard = shard
	ev.Spilled = shard != order[0]
	latency := g.cfg.Clock().Sub(start).Seconds()
	if lastErr != nil {
		if resilience.IsClass(lastErr, resilience.Overloaded) {
			g.overloadRej.Add(1)
		}
		g.tenantFinish(tenant, latency, 0, lastErr)
		g.auditFinish(ev, start, lastErr)
		return nil, lastErr
	}
	g.routed.Add(1)
	if ev.Spilled {
		g.spilled.Add(1)
	}
	ev.FLOP = res.FLOP
	g.tenantFinish(tenant, latency, res.FLOP, nil)
	g.auditFinish(ev, start, nil)
	return &Result{
		QueryResult: res,
		Shard:       shard,
		ShardID:     g.ids[shard],
		Spilled:     ev.Spilled,
		RequestID:   rid,
	}, nil
}

// auditFinish stamps the outcome and latency and submits the event.
func (g *Gateway) auditFinish(ev Event, start time.Time, err error) {
	if g.audit == nil {
		return
	}
	now := g.cfg.Clock()
	ev.LatencySec = now.Sub(start).Seconds()
	ev.Outcome = outcomeClass(err)
	g.audit.submit(ev, now)
}

// outcomeClass renders an error as its audit outcome string.
func outcomeClass(err error) string {
	if err == nil {
		return "ok"
	}
	if class, ok := resilience.ClassOf(err); ok {
		return class.String()
	}
	switch {
	case errors.Is(err, serve.ErrClosed):
		return "closed"
	case errors.Is(err, serve.ErrOverloaded):
		return resilience.Overloaded.String()
	default:
		return "error"
	}
}

// InvalidateDataset bumps the dataset version and broadcasts the bump to
// every shard in index order, synchronously: when it returns, every
// shard's DatasetVersion(id) has reached the gateway's version, so no
// shard can serve an intermediate cached under the old version to any
// query admitted after the return (each shard binds the version at query
// start and old-version cache keys are unreachable and eagerly dropped).
// Broadcasts are serialized, so concurrent invalidations apply in one
// global order and shard versions never diverge from the gateway's.
func (g *Gateway) InvalidateDataset(id string) int64 {
	g.invMu.Lock()
	defer g.invMu.Unlock()
	g.verMu.Lock()
	g.versions[id]++
	v := g.versions[id]
	g.verMu.Unlock()
	for _, sh := range g.shards {
		// Acknowledged catch-up: a shard bumped out-of-band (direct
		// InvalidateDataset on the instance) may already be ahead; behind
		// ones are bumped until they reach the broadcast version.
		for sh.DatasetVersion(id) < v {
			sh.InvalidateDataset(id)
		}
	}
	g.invals.Add(1)
	return v
}

// DatasetVersion returns the gateway's current version for a dataset id
// (0 until the first InvalidateDataset).
func (g *Gateway) DatasetVersion(id string) int64 {
	g.verMu.Lock()
	defer g.verMu.Unlock()
	return g.versions[id]
}

// ShardVersions reports each shard's view of a dataset version, in shard
// order — after an InvalidateDataset returns they all equal the gateway's.
func (g *Gateway) ShardVersions(id string) []int64 {
	out := make([]int64, len(g.shards))
	for i, sh := range g.shards {
		out[i] = sh.DatasetVersion(id)
	}
	return out
}

// Audit returns up to n most recent audit events, oldest first (nil when
// the audit plane is disabled).
func (g *Gateway) Audit(n int) []Event {
	if g.audit == nil {
		return nil
	}
	return g.audit.Tail(n)
}

// Health is the gateway's aggregate probe payload.
type Health struct {
	OK bool `json:"ok"`
	// ReadyShards counts shards currently ready for traffic.
	ReadyShards int `json:"ready_shards"`
	// Shards holds each shard's own probe payload, in shard order.
	Shards []serve.Health `json:"shards"`
}

// Healthz is the liveness probe: true while every shard process is live
// (shard liveness never fails by design; this surfaces their payloads).
func (g *Gateway) Healthz() Health {
	h := Health{OK: true}
	for _, sh := range g.shards {
		h.Shards = append(h.Shards, sh.Healthz())
	}
	h.ReadyShards = len(h.Shards)
	return h
}

// Readyz is the readiness probe: the gateway can take traffic while at
// least one shard admits (spill-over reaches it even for keys homed
// elsewhere).
func (g *Gateway) Readyz() Health {
	var h Health
	for _, sh := range g.shards {
		shh := sh.Readyz()
		if shh.OK {
			h.ReadyShards++
		}
		h.Shards = append(h.Shards, shh)
	}
	h.OK = h.ReadyShards > 0
	return h
}

// Shutdown drains every shard concurrently, then drains the audit queue
// (flushing accepted events into the tail and sink). It returns the first
// shard error, if any.
func (g *Gateway) Shutdown(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(g.shards))
	for i, sh := range g.shards {
		wg.Add(1)
		go func(i int, sh Instance) {
			defer wg.Done()
			errs[i] = sh.Shutdown(ctx)
		}(i, sh)
	}
	wg.Wait()
	if g.audit != nil {
		g.audit.Drain()
	}
	return errors.Join(errs...)
}

// requestCounter feeds NewRequestID.
var requestCounter atomic.Uint64

// NewRequestID returns a process-unique request id (nanosecond timestamp
// + counter, hex). Both HTTP front-ends use it when the client did not
// send an X-Request-ID.
func NewRequestID() string {
	return fmt.Sprintf("%012x-%06x", uint64(time.Now().UnixNano())&0xffffffffffff, requestCounter.Add(1)&0xffffff)
}
