// Package gateway is the sharded multi-node serving tier: a front-end
// that routes queries across several serve.Server instances with
// dataset-affine consistent-hash placement (so plan/intermediate/MQO
// cache locality survives scale-out), layers per-tenant admission quotas
// above each shard's circuit breaker, fans dataset invalidations out to
// every shard with an acknowledged ordered broadcast, and records every
// query on an audit plane (who ran what, where, at what cost).
//
// Shards are in-process serve.Server instances behind the Instance
// interface, so tests and benches stay hermetic while cmd/remac-gateway
// exposes the same tier over HTTP. Routing is deterministic: the ring's
// seeded placement plus ordered spill-over means any two gateways with
// the same configuration route a key identically.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"remac/internal/httpapi"
	"remac/internal/lang"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// Instance is one serving shard as the gateway sees it. *serve.Server
// implements it; tests substitute fakes.
type Instance interface {
	Do(ctx context.Context, q serve.Query) (*serve.QueryResult, error)
	InvalidateDataset(id string)
	DatasetVersion(id string) int64
	Metrics() serve.Snapshot
	Healthz() serve.Health
	Readyz() serve.Health
	Shutdown(ctx context.Context) error
}

var _ Instance = (*serve.Server)(nil)

// Config parameterizes a Gateway. The zero value of every optional field
// picks a sensible default.
type Config struct {
	// Shards is the number of in-process serve.Server instances to run
	// (ignored by NewWithInstances). Default 2.
	Shards int
	// Serve configures each spawned shard; ShardID is overwritten per
	// shard ("shard-0", "shard-1", …).
	Serve serve.Config
	// VirtualNodes per shard on the consistent-hash ring. Default 64.
	VirtualNodes int
	// Seed perturbs ring placement (any fixed value is deterministic).
	Seed uint64
	// SpillOver bounds how many alternate shards a query may try after its
	// home shard rejects it with an Overloaded-class error (breaker open
	// or queue saturated). 0 disables spill-over; default 1. The ring's
	// preference order makes the alternates deterministic.
	SpillOver int
	// RouteRandom replaces affinity routing with seeded pseudo-random
	// shard choice. It exists for the shard bench's control arm — random
	// routing destroys cache locality by construction — and for A/B
	// measurements; production configurations want affinity.
	RouteRandom bool
	// Failover bounds how many alternate shards a query may try after a
	// shard fails it with an Internal-class error (crash, panic, abandoned
	// producer). Distinct from SpillOver: spill-over reacts to overload
	// (the shard is alive but saturated), failover to failure (the shard is
	// broken). Negative disables failover; default 1.
	Failover int

	// ProbeInterval is the active health monitor's period. Zero disables
	// the background prober — ProbeNow still drives rounds manually (tests,
	// benches, operators).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one shard probe; a probe that hangs past it is a
	// liveness failure (a wedged shard must not stall the monitor). Default
	// 1s.
	ProbeTimeout time.Duration
	// EjectAfter is how many consecutive failed probes eject a shard
	// (healthy → suspect on the first, ejected on the EjectAfter-th).
	// Negative disables active detection; default 3.
	EjectAfter int
	// PassiveFailures is how many consecutive Internal-class query
	// outcomes on one shard trip passive ejection (a breaker window one
	// layer above the shard's own). Negative disables passive detection;
	// default 3.
	PassiveFailures int
	// RejoinProbes is how many consecutive passed probes — each with
	// dataset versions fully caught up to the gateway's broadcast versions
	// — a rejoining shard needs before readmission. Default 2.
	RejoinProbes int
	// ReadyQuorum is the minimum number of live (non-ejected, probe-OK)
	// shards for the gateway itself to report healthy/ready. Default 1.
	ReadyQuorum int
	// Respawn, when non-nil, is the supervisor's factory for replacing a
	// dead ejected instance. New installs a default that respawns an
	// in-process serve.Server with the shard's original configuration;
	// NewWithInstances leaves it nil unless the caller provides one.
	Respawn func(shard int, id string) Instance

	// DefaultTimeout is the per-query deadline bound once at the gateway:
	// every spill-over and failover attempt shares the remaining budget
	// (no fresh timeout per attempt). Query.Timeout overrides it per
	// query. Zero means no gateway deadline.
	DefaultTimeout time.Duration

	// Quotas maps tenant name to its admission quota; tenants not listed
	// get DefaultQuota. A zero quota is unlimited.
	Quotas map[string]TenantQuota
	// DefaultQuota applies to tenants without an explicit entry.
	DefaultQuota TenantQuota

	// AuditDepth bounds the audit queue (default 1024); a full queue drops
	// events (counted) rather than blocking the serving path. Negative
	// disables the audit plane entirely.
	AuditDepth int
	// AuditTail bounds the in-memory event tail served by Audit (default
	// 256).
	AuditTail int
	// AuditSink, when non-nil, additionally receives every event from the
	// single writer goroutine (a JSONL file, a test recorder, …).
	AuditSink Sink

	// Clock is injectable for tests (quota refill and audit timestamps).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.VirtualNodes == 0 {
		c.VirtualNodes = 64
	}
	if c.SpillOver == 0 {
		c.SpillOver = 1
	}
	if c.SpillOver < 0 {
		c.SpillOver = 0
	}
	if c.Failover == 0 {
		c.Failover = 1
	}
	if c.Failover < 0 {
		c.Failover = 0
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EjectAfter == 0 {
		c.EjectAfter = 3
	}
	if c.PassiveFailures == 0 {
		c.PassiveFailures = 3
	}
	if c.RejoinProbes <= 0 {
		c.RejoinProbes = 2
	}
	if c.ReadyQuorum <= 0 {
		c.ReadyQuorum = 1
	}
	if c.AuditDepth == 0 {
		c.AuditDepth = 1024
	}
	if c.AuditTail <= 0 {
		c.AuditTail = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Request is one query submission through the gateway.
type Request struct {
	// Tenant identifies the submitting tenant for quotas, audit and
	// per-tenant stats; empty maps to "anonymous".
	Tenant string
	// RequestID correlates this request across the gateway, the shard and
	// the audit plane; empty generates one. It is echoed on the Result and
	// inside error bodies by the HTTP front-ends.
	RequestID string
	// Query is the underlying serving query. Query.Dataset is also the
	// routing key (with the gateway's dataset version appended).
	Query serve.Query
}

// Result is a gateway-served query result: the shard outcome plus routing
// metadata.
type Result struct {
	*serve.QueryResult
	// Shard is the index of the instance that served the query; ShardID
	// its metrics label.
	Shard   int
	ShardID string
	// Spilled marks a query served off its home shard because the home
	// rejected it as overloaded.
	Spilled bool
	// Failover marks a query re-routed off a shard that failed it with an
	// Internal-class error (as opposed to Spilled's overload).
	Failover bool
	// RequestID is the propagated (or generated) request id.
	RequestID string
}

// Gateway routes queries across shards. Create with New (spawns
// in-process serve.Servers) or NewWithInstances (caller-provided shards),
// submit with Do, stop with Shutdown.
type Gateway struct {
	cfg    Config
	ids    []string
	ring   *ring
	quotas *quotas
	audit  *auditor

	// instMu guards the shard slice: the supervisor swaps a respawned
	// instance in place while traffic flows.
	instMu sync.RWMutex
	shards []Instance

	life *lifecycle

	routeSeq atomic.Uint64 // RouteRandom stream position

	invMu    sync.Mutex // serializes invalidation broadcasts
	verMu    sync.Mutex
	versions map[string]int64

	routed      atomic.Uint64
	spilled     atomic.Uint64
	failedOver  atomic.Uint64
	quotaRej    atomic.Uint64
	overloadRej atomic.Uint64
	failoverExh atomic.Uint64
	deadlineRej atomic.Uint64
	invals      atomic.Uint64
	invalLagged atomic.Uint64
	ejections   atomic.Uint64
	respawns    atomic.Uint64
	rejoins     atomic.Uint64

	tenantMu sync.Mutex
	tenants  map[string]*tenantStats
}

// New builds a gateway running cfg.Shards in-process serve.Server shards.
// The per-query deadline moves up a layer: the shard's DefaultTimeout is
// lifted into the gateway's, so spill-over and failover attempts share one
// budget instead of each attempt getting a fresh shard-level timeout.
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = cfg.Serve.DefaultTimeout
	}
	cfg.Serve.DefaultTimeout = 0
	spawn := func(id string) Instance {
		scfg := cfg.Serve
		scfg.ShardID = id
		return serve.New(scfg)
	}
	if cfg.Respawn == nil {
		cfg.Respawn = func(_ int, id string) Instance { return spawn(id) }
	}
	shards := make([]Instance, cfg.Shards)
	ids := make([]string, cfg.Shards)
	for i := range shards {
		ids[i] = fmt.Sprintf("shard-%d", i)
		shards[i] = spawn(ids[i])
	}
	return newGateway(cfg, shards, ids)
}

// NewWithInstances builds a gateway over caller-provided shards (tests,
// or a future remote-instance client). cfg.Shards is ignored.
func NewWithInstances(cfg Config, instances []Instance) *Gateway {
	if len(instances) == 0 {
		panic("gateway: NewWithInstances requires at least one instance")
	}
	cfg.Shards = len(instances)
	cfg = cfg.withDefaults()
	ids := make([]string, len(instances))
	for i := range instances {
		if id := instances[i].Metrics().Shard; id != "" {
			ids[i] = id
		} else {
			ids[i] = fmt.Sprintf("shard-%d", i)
		}
	}
	return newGateway(cfg, instances, ids)
}

func newGateway(cfg Config, shards []Instance, ids []string) *Gateway {
	g := &Gateway{
		cfg:      cfg,
		shards:   shards,
		ids:      ids,
		ring:     newRing(len(shards), cfg.VirtualNodes, cfg.Seed),
		quotas:   newQuotas(cfg.Quotas, cfg.DefaultQuota, cfg.Clock),
		versions: map[string]int64{},
		tenants:  map[string]*tenantStats{},
	}
	if cfg.AuditDepth > 0 {
		g.audit = newAuditor(cfg.AuditDepth, cfg.AuditTail, cfg.AuditSink)
	}
	g.life = newLifecycle(g)
	return g
}

// Shards returns the number of shards behind the gateway.
func (g *Gateway) Shards() int { return len(g.ids) }

// instance reads shard i's current instance (the supervisor may have
// swapped it since the last read).
func (g *Gateway) instance(i int) Instance {
	g.instMu.RLock()
	defer g.instMu.RUnlock()
	return g.shards[i]
}

// swapInstance installs a fresh instance for shard i and returns the old
// one (for the supervisor to shut down).
func (g *Gateway) swapInstance(i int, fresh Instance) Instance {
	g.instMu.Lock()
	defer g.instMu.Unlock()
	old := g.shards[i]
	g.shards[i] = fresh
	return old
}

// ProbeNow runs one synchronous probe round across every shard, applying
// the lifecycle state machine: the manual counterpart of the background
// prober (ProbeInterval > 0), used by tests, benches and operators.
func (g *Gateway) ProbeNow() { g.life.probeRound() }

// ShardState returns shard i's current lifecycle state.
func (g *Gateway) ShardState(i int) ShardState { return g.life.snapshotStates()[i] }

// LifecycleStates returns every shard's lifecycle state, in shard order.
func (g *Gateway) LifecycleStates() []ShardState { return g.life.snapshotStates() }

// routeKey is the ring key for a query: dataset@version, so every query
// touching one dataset version shares a home shard (and with it the plan
// cache, intermediate cache and MQO batches warmed by its siblings).
// After an invalidation bumps the version the key changes — placement
// deliberately re-rolls, which is free because the bump already made every
// cached value unreachable. Dataset-less queries route by canonical
// program text so identical scripts still colocate.
func (g *Gateway) routeKey(q serve.Query) string {
	if q.Dataset == "" {
		return "script:" + canonicalKey(q.Script)
	}
	return fmt.Sprintf("%s@%d", q.Dataset, g.DatasetVersion(q.Dataset))
}

// canonicalKey fingerprints a script's canonical token stream (falling
// back to the raw text when it does not parse — the shard will return the
// compile error; the audit trail still wants a stable key).
func canonicalKey(script string) string {
	text, err := lang.Canonical(script)
	if err != nil {
		text = script
	}
	h := fnv.New64a()
	h.Write([]byte(text))
	return fmt.Sprintf("%016x", h.Sum64())
}

// order returns the shard preference order for a query under the
// configured routing policy.
func (g *Gateway) order(q serve.Query) []int {
	if !g.cfg.RouteRandom {
		return g.ring.order(g.routeKey(q))
	}
	// Seeded pseudo-random (SplitMix64 over a stream counter): uniform,
	// deterministic for a given seed and call sequence, and cache-blind.
	x := g.cfg.Seed + 0x9e3779b97f4a7c15*(g.routeSeq.Add(1))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	home := int(x % uint64(len(g.ids)))
	out := make([]int, len(g.ids))
	for i := range out {
		out[i] = (home + i) % len(g.ids)
	}
	return out
}

// routable filters a preference order down to shards that take traffic
// (healthy or suspect). Ejected and rejoining shards are skipped in place:
// surviving shards keep their position, so only the dead shard's keys move
// — each to the next shard in its own preference order, deterministically.
func (g *Gateway) routable(order []int) []int {
	states := g.life.snapshotStates()
	out := make([]int, 0, len(order))
	for _, s := range order {
		if states[s].takesTraffic() {
			out = append(out, s)
		}
	}
	return out
}

// routableOrder is the preference order Do actually walks for a query.
func (g *Gateway) routableOrder(q serve.Query) []int {
	return g.routable(g.order(q))
}

// ErrFailoverExhausted is the root cause inside the Internal-class error
// returned when every failover attempt also failed.
var ErrFailoverExhausted = errors.New("gateway: failover budget exhausted")

// ErrDeadlineExhausted is the root cause inside the Canceled-class (504)
// error returned when the query's deadline ran out across attempts.
var ErrDeadlineExhausted = errors.New("gateway: per-query deadline exhausted")

// ErrNoShards is the root cause inside the Overloaded-class (503) error
// returned when ejections have left no routable shard for a query.
var ErrNoShards = errors.New("gateway: no routable shards")

// Do routes one request: tenant quota admission, then the home shard from
// the ring's routable preference order, moving to the next shard when one
// rejects or fails — spill-over (bounded by cfg.SpillOver) on
// Overloaded-class rejections, failover (bounded by cfg.Failover) on
// Internal-class failures. The per-query deadline is bound once here:
// every attempt shares the remaining budget, and exhausting it yields a
// typed Canceled-class (504) error. Every shard outcome feeds the passive
// failure detector, and every request outcome — success, quota rejection,
// overload, failover exhaustion — is recorded on the audit plane with the
// tenant, canonical query key, shard, outcome class, charged FLOP and
// latency.
func (g *Gateway) Do(ctx context.Context, req Request) (*Result, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	rid := req.RequestID
	if rid == "" {
		rid = NewRequestID()
	}
	start := g.cfg.Clock()
	ev := Event{
		Tenant:       tenant,
		RequestID:    rid,
		CanonicalKey: canonicalKey(req.Query.Script),
		Dataset:      req.Query.Dataset,
		Shard:        -1,
	}

	// Bind the deadline once, before the first attempt: spill-over and
	// failover attempts share the remaining budget rather than each
	// getting a fresh shard-level timeout, so a query can never exceed its
	// deadline by straggling across the fleet. The shard-level timeout is
	// cleared so the shard cannot re-arm a fresh one per attempt.
	q := req.Query
	timeout := q.Timeout
	if timeout == 0 {
		timeout = g.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	q.Timeout = 0

	// Stamp the idempotency key before the first attempt so every retry,
	// spill-over and failover of this query carries the same key: a shard
	// that already executed it replays the committed result instead of
	// executing twice. Callers may pin their own key (client-side retries
	// across gateway connections); otherwise the request id — unique per
	// gateway attempt sequence — is exactly the right scope.
	if q.IdempotencyKey == "" {
		q.IdempotencyKey = rid
	}

	release, err := g.quotas.admit(tenant)
	if err != nil {
		g.quotaRej.Add(1)
		g.tenantFinish(tenant, 0, 0, err)
		g.auditFinish(ev, start, err)
		return nil, err
	}
	defer release()

	order := g.routableOrder(q)
	if len(order) == 0 {
		err := &resilience.QueryError{Class: resilience.Overloaded, Stage: "route",
			Err: ErrNoShards, RetryAfter: time.Second}
		g.overloadRej.Add(1)
		g.tenantFinish(tenant, 0, 0, err)
		g.auditFinish(ev, start, err)
		return nil, err
	}
	var res *serve.QueryResult
	var lastErr error
	shard := -1
	spills, failovers := 0, 0
	spilled, failedOver := false, false
	var retryAfterHint time.Duration
	for i := 0; i < len(order); i++ {
		shard = order[i]
		res, lastErr = g.instance(shard).Do(ctx, q)
		g.life.observe(shard, lastErr, rid)
		if lastErr == nil {
			break
		}
		if ctx.Err() != nil || i+1 >= len(order) {
			break
		}
		if resilience.IsClass(lastErr, resilience.Quota) {
			// 429 from a shard is tenant-level backpressure, not shard
			// saturation: every replica enforces the same quota, so
			// spilling over would just burn the fleet re-rejecting the
			// same tenant. Terminal — the Retry-After travels back as-is.
			break
		}
		if resilience.IsClass(lastErr, resilience.Overloaded) && spills < g.cfg.SpillOver {
			// Saturated or breaker-open shard (503): bounded spill-over to
			// the next shard in preference order. Remember the soonest
			// Retry-After any shard advertised — if every replica turns us
			// away, the final rejection tells the client when the
			// least-loaded one expects capacity back.
			if ra := retryAfterOf(lastErr); ra > 0 && (retryAfterHint == 0 || ra < retryAfterHint) {
				retryAfterHint = ra
			}
			spills++
			spilled = true
			continue
		}
		if resilience.IsClass(lastErr, resilience.Internal) && failovers < g.cfg.Failover {
			// Broken shard (crash, panic, abandoned producer, wire-retry
			// exhaustion on a remote shard): bounded failover to the next
			// shard in preference order.
			failovers++
			failedOver = true
			continue
		}
		break
	}
	ev.Shard = shard
	ev.Spilled = spilled
	ev.Failover = failedOver
	latency := g.cfg.Clock().Sub(start).Seconds()
	if lastErr != nil {
		switch {
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			g.deadlineRej.Add(1)
			lastErr = &resilience.QueryError{Class: resilience.Canceled, Stage: "deadline",
				Err: fmt.Errorf("%w: %w", ErrDeadlineExhausted, lastErr)}
		case resilience.IsClass(lastErr, resilience.Internal) && failedOver:
			g.failoverExh.Add(1)
			lastErr = &resilience.QueryError{Class: resilience.Internal, Stage: "failover",
				Err: fmt.Errorf("%w after %d attempt(s): %w", ErrFailoverExhausted, failovers+1, lastErr)}
		case resilience.IsClass(lastErr, resilience.Overloaded):
			g.overloadRej.Add(1)
			// The last-tried shard's hint competes for the minimum too.
			if ra := retryAfterOf(lastErr); ra > 0 && (retryAfterHint == 0 || ra < retryAfterHint) {
				retryAfterHint = ra
			}
			if spilled && retryAfterHint > 0 && retryAfterOf(lastErr) != retryAfterHint {
				// The fleet-wide rejection carries the soonest Retry-After
				// seen while spilling, not whichever shard happened to be
				// tried last.
				lastErr = &resilience.QueryError{Class: resilience.Overloaded, Stage: "route",
					Err:        fmt.Errorf("all %d spill target(s) overloaded: %w", spills+1, lastErr),
					RetryAfter: retryAfterHint}
			}
		}
		g.tenantFinish(tenant, latency, 0, lastErr)
		g.auditFinish(ev, start, lastErr)
		return nil, lastErr
	}
	g.routed.Add(1)
	if spilled {
		g.spilled.Add(1)
	}
	if failedOver {
		g.failedOver.Add(1)
	}
	ev.FLOP = res.FLOP
	g.tenantFinish(tenant, latency, res.FLOP, nil)
	g.auditFinish(ev, start, nil)
	return &Result{
		QueryResult: res,
		Shard:       shard,
		ShardID:     g.ids[shard],
		Spilled:     spilled,
		Failover:    failedOver,
		RequestID:   rid,
	}, nil
}

// auditFinish stamps the outcome and latency and submits the event.
func (g *Gateway) auditFinish(ev Event, start time.Time, err error) {
	if g.audit == nil {
		return
	}
	now := g.cfg.Clock()
	ev.LatencySec = now.Sub(start).Seconds()
	ev.Outcome = outcomeClass(err)
	g.audit.submit(ev, now)
}

// outcomeClass renders an error as its audit outcome string.
func outcomeClass(err error) string {
	if err == nil {
		return "ok"
	}
	if class, ok := resilience.ClassOf(err); ok {
		return class.String()
	}
	switch {
	case errors.Is(err, serve.ErrClosed):
		return "closed"
	case errors.Is(err, serve.ErrOverloaded):
		return resilience.Overloaded.String()
	default:
		return "error"
	}
}

// InvalidateDataset bumps the dataset version and broadcasts the bump to
// every shard in index order, synchronously: when it returns, every live
// shard's DatasetVersion(id) has reached the gateway's version, so no
// live shard can serve an intermediate cached under the old version to
// any query admitted after the return (each shard binds the version at
// query start and old-version cache keys are unreachable and eagerly
// dropped). Broadcasts are serialized, so concurrent invalidations apply
// in one global order and shard versions never diverge from the
// gateway's. A dead shard that cannot acknowledge is left behind (the
// catch-up is bounded, counted in stats) — it is not serving, and the
// rejoin gate replays the catch-up before it ever takes traffic again.
func (g *Gateway) InvalidateDataset(id string) int64 {
	g.invMu.Lock()
	defer g.invMu.Unlock()
	g.verMu.Lock()
	g.versions[id]++
	v := g.versions[id]
	g.verMu.Unlock()
	for i := range g.ids {
		if !g.bumpToVersion(g.instance(i), id, v) {
			g.invalLagged.Add(1)
		}
	}
	g.invals.Add(1)
	return v
}

// bumpToVersion drives one shard's dataset version up to v with an
// acknowledged catch-up: a shard bumped out-of-band may already be ahead;
// behind ones are bumped until they reach v. Each round must make
// progress — a shard that stops acknowledging (dead, wedged) ends the
// loop instead of spinning the broadcast forever. Reports whether the
// shard reached v.
func (g *Gateway) bumpToVersion(inst Instance, id string, v int64) bool {
	cur := inst.DatasetVersion(id)
	for cur < v {
		inst.InvalidateDataset(id)
		next := inst.DatasetVersion(id)
		if next <= cur {
			return false
		}
		cur = next
	}
	return true
}

// catchUp replays every dataset's broadcast version onto shard i and, if
// the shard is fully caught up, runs admit while still holding the
// broadcast lock — so no invalidation can slip between the version check
// and the readmission decision. Returns whether the shard was caught up.
func (g *Gateway) catchUp(i int, admit func() bool) bool {
	g.invMu.Lock()
	defer g.invMu.Unlock()
	g.verMu.Lock()
	versions := make(map[string]int64, len(g.versions))
	for id, v := range g.versions {
		versions[id] = v
	}
	g.verMu.Unlock()
	inst := g.instance(i)
	for id, v := range versions {
		if !g.bumpToVersion(inst, id, v) {
			return false
		}
	}
	if admit != nil {
		admit()
	}
	return true
}

// DatasetVersion returns the gateway's current version for a dataset id
// (0 until the first InvalidateDataset).
func (g *Gateway) DatasetVersion(id string) int64 {
	g.verMu.Lock()
	defer g.verMu.Unlock()
	return g.versions[id]
}

// ShardVersions reports each shard's view of a dataset version, in shard
// order — after an InvalidateDataset returns, every shard that was live
// for the broadcast equals the gateway's.
func (g *Gateway) ShardVersions(id string) []int64 {
	out := make([]int64, len(g.ids))
	for i := range out {
		out[i] = g.instance(i).DatasetVersion(id)
	}
	return out
}

// Audit returns up to n most recent audit events, oldest first (nil when
// the audit plane is disabled).
func (g *Gateway) Audit(n int) []Event {
	if g.audit == nil {
		return nil
	}
	return g.audit.Tail(n)
}

// Health is the gateway's aggregate probe payload.
type Health struct {
	OK bool `json:"ok"`
	// ReadyShards counts shards currently ready for traffic (Readyz) or
	// live (Healthz).
	ReadyShards int `json:"ready_shards"`
	// EjectedShards counts shards currently out of the routing order.
	EjectedShards int `json:"ejected_shards,omitempty"`
	// Quorum is the configured minimum of live shards for the gateway
	// itself to report OK.
	Quorum int `json:"quorum"`
	// Lifecycle holds each shard's lifecycle state, in shard order.
	Lifecycle []string `json:"lifecycle"`
	// Shards holds each shard's own probe payload, in shard order.
	Shards []serve.Health `json:"shards"`
}

// safeProbe runs a shard probe with panic isolation so a broken instance
// cannot take the gateway's own health endpoint down with it.
func safeProbe(probe func() serve.Health) (h serve.Health) {
	defer func() {
		if r := recover(); r != nil {
			h = serve.Health{OK: false, Status: "probe panicked"}
		}
	}()
	return probe()
}

// timedProbe additionally bounds the probe by ProbeTimeout: a wedged
// shard reports unhealthy instead of hanging the gateway's own endpoint.
func (g *Gateway) timedProbe(probe func() serve.Health) serve.Health {
	ch := make(chan serve.Health, 1)
	go func() { ch <- safeProbe(probe) }()
	t := time.NewTimer(g.cfg.ProbeTimeout)
	defer t.Stop()
	select {
	case h := <-ch:
		return h
	case <-t.C:
		return serve.Health{OK: false, Status: "probe timed out"}
	}
}

// Healthz is the fleet liveness probe: OK while at least ReadyQuorum
// shards are live (not ejected, passing their own liveness probe). Losing
// quorum degrades the gateway itself to unhealthy, so orchestrators see a
// fleet-wide outage rather than per-query failures.
func (g *Gateway) Healthz() Health {
	return g.fleetHealth(func(inst Instance) serve.Health { return inst.Healthz() })
}

// Readyz is the readiness probe: OK while at least ReadyQuorum routable
// shards admit traffic (spill-over reaches them even for keys homed
// elsewhere).
func (g *Gateway) Readyz() Health {
	return g.fleetHealth(func(inst Instance) serve.Health { return inst.Readyz() })
}

// fleetHealth aggregates one probe across the fleet under the lifecycle
// view: ejected and rejoining shards never count toward quorum.
func (g *Gateway) fleetHealth(probe func(Instance) serve.Health) Health {
	states := g.life.snapshotStates()
	h := Health{Quorum: g.cfg.ReadyQuorum}
	for i := range g.ids {
		inst := g.instance(i)
		shh := g.timedProbe(func() serve.Health { return probe(inst) })
		h.Shards = append(h.Shards, shh)
		h.Lifecycle = append(h.Lifecycle, states[i].String())
		if states[i] == ShardEjected {
			h.EjectedShards++
		}
		if states[i].takesTraffic() && shh.OK {
			h.ReadyShards++
		}
	}
	h.OK = h.ReadyShards >= h.Quorum
	return h
}

// Shutdown stops the lifecycle monitor (and waits out its in-flight
// respawn cleanups), drains every shard concurrently, then drains the
// audit queue (flushing accepted events into the tail and sink). It
// returns the first shard error, if any.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.life.shutdown()
	var wg sync.WaitGroup
	errs := make([]error, len(g.ids))
	for i := range g.ids {
		wg.Add(1)
		go func(i int, sh Instance) {
			defer wg.Done()
			errs[i] = sh.Shutdown(ctx)
		}(i, g.instance(i))
	}
	wg.Wait()
	if g.audit != nil {
		g.audit.Drain()
	}
	return errors.Join(errs...)
}

// NewRequestID returns a process-unique request id (nanosecond timestamp
// + counter, hex). The implementation lives in httpapi — which both HTTP
// front-ends and the remote transport share — and is aliased here for the
// gateway's in-process callers.
func NewRequestID() string { return httpapi.NewRequestID() }

// retryAfterOf extracts the Retry-After hint a typed rejection carries
// (zero when absent).
func retryAfterOf(err error) time.Duration {
	var qe *resilience.QueryError
	if errors.As(err, &qe) {
		return qe.RetryAfter
	}
	return 0
}
