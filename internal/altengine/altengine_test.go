package altengine

import (
	"testing"

	"remac/internal/algorithms"
	"remac/internal/data"
	"remac/internal/engine"
	"remac/internal/sparsity"
)

func setup(t *testing.T) (map[string]sparsity.Meta, map[string]engine.Input) {
	t.Helper()
	ds := data.MustLoad("cri1")
	ins := map[string]engine.Input{
		"A":  {Data: ds.A, VRows: ds.VRows, VCols: ds.VCols},
		"b":  {Data: ds.Label(), VRows: ds.VRows, VCols: 1},
		"H0": {Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols},
		"x0": {Data: ds.InitialX(), VRows: ds.VCols, VCols: 1},
	}
	metas := map[string]sparsity.Meta{}
	for name, in := range ins {
		metas[name] = sparsity.Virtualize(sparsity.MetaOf(in.Data), in.VRows, in.VCols)
	}
	return metas, ins
}

func TestKindString(t *testing.T) {
	if PbdR.String() != "pbdR" || SciDB.String() != "SciDB" {
		t.Fatal("names changed — Fig 11 output depends on them")
	}
}

func TestAlternativeEnginesSlowerThanReMac(t *testing.T) {
	metas, ins := setup(t)
	prog := algorithms.MustProgram(algorithms.GD, 5)
	pbdr, err := Run(PbdR, prog, metas, ins, 5)
	if err != nil {
		t.Fatal(err)
	}
	scidb, err := Run(SciDB, prog, metas, ins, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pbdr.Iterations != 5 || scidb.Iterations != 5 {
		t.Fatal("iteration counts wrong")
	}
	if pbdr.ExecSeconds <= 0 || scidb.ExecSeconds <= 0 {
		t.Fatal("no execution time")
	}
	// §6.5: pbdR and SciDB take hours for input partition (serial dense
	// load); SystemDS/ReMac take minutes.
	if pbdr.InputPartitionSeconds < 600 {
		t.Errorf("pbdR input partition %.0fs, expected serial-load hours scale", pbdr.InputPartitionSeconds)
	}
	if scidb.InputPartitionSeconds <= pbdr.InputPartitionSeconds {
		t.Error("SciDB's redimension should cost more than pbdR's load")
	}
}

func TestDenseOnlyPenalizesSparseData(t *testing.T) {
	// pbdR treats sparse matrices as dense: running on cri2 (0.45% nnz)
	// must cost like a dense matrix of the same shape.
	dsSparse := data.MustLoad("cri2")
	ins := map[string]engine.Input{
		"A":  {Data: dsSparse.A, VRows: dsSparse.VRows, VCols: dsSparse.VCols},
		"b":  {Data: dsSparse.Label(), VRows: dsSparse.VRows, VCols: 1},
		"H0": {Data: dsSparse.InitialH(), VRows: dsSparse.VCols, VCols: dsSparse.VCols},
		"x0": {Data: dsSparse.InitialX(), VRows: dsSparse.VCols, VCols: 1},
	}
	metas := map[string]sparsity.Meta{}
	for name, in := range ins {
		metas[name] = sparsity.Virtualize(sparsity.MetaOf(in.Data), in.VRows, in.VCols)
	}
	prog := algorithms.MustProgram(algorithms.GD, 3)
	res, err := Run(PbdR, prog, metas, ins, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dense 58.4M×8.7K is ~4TB; the serial input partition alone must be
	// enormous compared to the dense-but-small cri1.
	metas1, ins1 := setup(t)
	res1, err := Run(PbdR, algorithms.MustProgram(algorithms.GD, 3), metas1, ins1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputPartitionSeconds <= res1.InputPartitionSeconds {
		t.Error("dense-materialized cri2 should load far slower than cri1")
	}
}
