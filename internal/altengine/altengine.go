// Package altengine simulates the alternative distributed solutions of
// §6.4 — pbdR (atop ScaLAPACK, the HPC representative) and SciDB (the
// array-database representative) — at the fidelity the paper characterizes
// them: no redundancy elimination, no driver-local execution mode, dense
// storage regardless of input sparsity, and slow serial input partitioning
// (hours for the evaluation's matrices; pbdR builds dense distributed
// matrices serially, SciDB additionally needs a redimension pass).
package altengine

import (
	"fmt"

	"remac/internal/cluster"
	"remac/internal/engine"
	"remac/internal/lang"
	"remac/internal/matrix"
	"remac/internal/opt"
	"remac/internal/sparsity"
)

// Kind selects the simulated engine.
type Kind int

const (
	// PbdR is programming-with-big-data-in-R over ScaLAPACK.
	PbdR Kind = iota
	// SciDB is the array database.
	SciDB
)

// String names the engine as in Fig 11.
func (k Kind) String() string {
	if k == SciDB {
		return "SciDB"
	}
	return "pbdR"
}

// Result reports a simulated run.
type Result struct {
	// ExecSeconds is the simulated execution time (input partition
	// excluded, like the paper's post-partition measurements).
	ExecSeconds float64
	// InputPartitionSeconds is the (serial) load-and-partition phase.
	InputPartitionSeconds float64
	Iterations            int
}

// Run executes a program on the simulated alternative engine. The engine
// compiles with no elimination and runs on a cluster profile with local
// mode disabled and dense-only storage.
func Run(kind Kind, prog *lang.Program, metas map[string]sparsity.Meta, inputs map[string]engine.Input, iterations int) (*Result, error) {
	cfg := cluster.DefaultConfig()
	cfg.NoLocalMode = true
	cfg.DenseOnly = true

	compiled, err := opt.Compile(prog, metas, opt.Config{
		Strategy:   opt.NoElimination,
		Cluster:    cfg,
		Iterations: iterations,
	})
	if err != nil {
		return nil, fmt.Errorf("altengine: %w", err)
	}
	res, err := engine.Run(compiled, inputs)
	if err != nil {
		return nil, fmt.Errorf("altengine: %w", err)
	}

	// Input partition: neither engine splits and partitions a dataset in
	// parallel (§6.5). The dense matrix loads through a single node's
	// disk and network link; SciDB additionally redimensions (a full
	// sort-shuffle pass through one coordinator).
	partition := 0.0
	for _, in := range inputs {
		meta := sparsity.Virtualize(sparsity.MetaOf(in.Data), in.VRows, in.VCols)
		denseBytes := float64(matrix.SizeBytesFor(int(meta.Rows), int(meta.Cols), 1))
		serial := denseBytes/cfg.DiskBandwidth + denseBytes/cfg.NetBandwidth
		if kind == SciDB {
			serial += 2 * denseBytes / cfg.NetBandwidth // redimension
		}
		partition += serial
	}

	return &Result{
		ExecSeconds:           res.Stats.TotalTime() - res.InputPartitionSec,
		InputPartitionSeconds: partition,
		Iterations:            res.Iterations,
	}, nil
}
