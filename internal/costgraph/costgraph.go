// Package costgraph implements adaptive elimination (§4): the building
// phase that evaluates each elimination option's plan trees into a cost
// graph, and the probing phase that selects the efficient combination of
// options through dynamic programming with candidate costs — plus the
// brute-force enumeration baselines of §6.3.3.
//
// The cost graph is organized exactly as the paper's: operators are keyed
// by coordinate intervals O(I_l, I_r) within multiplication-chain blocks;
// an operator may carry several costs (the plain cost, an LSE-amortized
// cost, apportioned CSE candidate costs), and probing resolves which cost
// and which downstream operator every input uses, yielding one plan tree
// per block with reuse annotations.
package costgraph

import (
	"fmt"
	"math"
	"sort"
	"time"

	"remac/internal/chain"
	"remac/internal/cost"
	"remac/internal/search"
	"remac/internal/sparsity"
)

// Config parameterizes adaptive elimination.
type Config struct {
	// Model prices operators on the target cluster.
	Model *cost.Model
	// Est propagates sparsity through intermediate results.
	Est sparsity.Estimator
	// Iterations is the loop trip count used to amortize LSE producer
	// costs (c_O divided by the number of iterations, §4.3.1).
	Iterations int
}

func (c Config) validate() error {
	if c.Model == nil {
		return fmt.Errorf("costgraph: nil cost model")
	}
	if c.Est == nil {
		return fmt.Errorf("costgraph: nil estimator")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("costgraph: Iterations = %d", c.Iterations)
	}
	return nil
}

// OpNode is one operator of a resolved block plan: either an interior
// multiplication, a leaf atom, or a reused span.
type OpNode struct {
	Lo, Hi int
	// ReuseOf is non-nil when this span's value comes from the reuse cache
	// (a selected CSE/LSE option).
	ReuseOf *search.Option
	// Flipped marks reuses that must transpose the cached value.
	Flipped bool
	L, R    *OpNode
	Meta    sparsity.Meta
	Local   bool
	// Cost is this operator's own cost (zero for leaves and reuses except
	// the transpose charge).
	Cost cost.Breakdown
}

// IsLeaf reports whether the node is a single atom.
func (n *OpNode) IsLeaf() bool { return n.Lo == n.Hi && n.ReuseOf == nil }

// Walk visits the tree pre-order.
func (n *OpNode) Walk(fn func(*OpNode)) {
	if n == nil {
		return
	}
	fn(n)
	n.L.Walk(fn)
	n.R.Walk(fn)
}

// BlockPlan is the resolved execution plan of one block.
type BlockPlan struct {
	Block *chain.Block
	Root  *OpNode
	// Cost is the residual per-iteration cost of this block's operators
	// (reused spans excluded — their producers are accounted globally).
	Cost float64
}

// ProducerPlan describes how a selected option's value is computed.
type ProducerPlan struct {
	Option *search.Option
	Root   *OpNode
	// Cost is the producer's full cost; for LSE options the charged cost
	// is Cost/Iterations.
	Cost float64
	// Charged is the per-iteration charge after CSE apportioning / LSE
	// amortization.
	Charged float64
}

// Decision is the outcome of adaptive elimination.
type Decision struct {
	Selected   []*search.Option
	BlockPlans []*BlockPlan
	Producers  []*ProducerPlan
	// TotalCost is the modelled per-iteration cost of the loop body under
	// the selected combination.
	TotalCost float64
	// BuildTime and ProbeTime split the compilation overhead like Fig 10a.
	BuildTime time.Duration
	ProbeTime time.Duration
	// Evaluated counts cost-graph evaluations (combinations for Enum,
	// marginal probes for DP).
	Evaluated int
}

// ProducerSig encodes the shape of a producer plan tree — its split points —
// so an intermediate-cache or MQO sharing key pins down the exact kernel
// sequence that produced the value. Two queries whose optimizers
// parenthesized the same canonical expression differently get different
// keys, which is what makes reusing a materialized value bitwise-identical
// to recomputation. Producers that reference other options' reuse leaves
// return "" (not shareable standalone: their value chains through
// run-local state).
func ProducerSig(n *OpNode) string {
	if n == nil {
		return ""
	}
	if n.ReuseOf != nil {
		return ""
	}
	if n.Lo == n.Hi {
		return fmt.Sprintf("%d", n.Lo)
	}
	l, r := ProducerSig(n.L), ProducerSig(n.R)
	if l == "" || r == "" {
		return ""
	}
	return "(" + l + "." + r + ")"
}

// Keys returns the selected option keys (sorted) for reporting.
func (d *Decision) Keys() []string {
	out := make([]string, len(d.Selected))
	for i, o := range d.Selected {
		out[i] = o.Key
	}
	sort.Strings(out)
	return out
}

// Planner evaluates option combinations over a coordinate system.
type Planner struct {
	cfg       Config
	coords    *chain.Coordinates
	options   []*search.Option
	conflicts [][]bool

	// occIndex maps (block, lo, hi) to the option occupying that span.
	occIndex map[[3]int]occRef
	// blockOpts lists option IDs with an occurrence in each block, so
	// block-cost memoization can fingerprint only the relevant selection.
	blockOpts map[int][]int

	blockCache map[string]float64
	prodCache  map[string]float64

	buildTime time.Duration
}

type occRef struct {
	opt     *search.Option
	flipped bool
}

// NewPlanner builds the cost graph for a searched program: the building
// phase of Algorithm 1 (per-option plan evaluation happens lazily and
// memoized inside Evaluate, which keeps the graph sparse).
func NewPlanner(cfg Config, res *search.Result) (*Planner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	p := &Planner{
		cfg:        cfg,
		coords:     res.Coords,
		options:    res.Options,
		conflicts:  search.ConflictMatrix(res.Options),
		occIndex:   map[[3]int]occRef{},
		blockOpts:  map[int][]int{},
		blockCache: map[string]float64{},
		prodCache:  map[string]float64{},
	}
	for _, o := range p.options {
		seen := map[int]bool{}
		for _, occ := range o.Occs {
			p.occIndex[[3]int{occ.Block, occ.Lo, occ.Hi}] = occRef{opt: o, flipped: occ.Flipped}
			if !seen[occ.Block] {
				seen[occ.Block] = true
				p.blockOpts[occ.Block] = append(p.blockOpts[occ.Block], o.ID)
			}
		}
	}
	p.buildTime = time.Since(start)
	return p, nil
}

// Options returns the option set under consideration.
func (p *Planner) Options() []*search.Option { return p.options }

// Conflicts exposes the pairwise conflict matrix.
func (p *Planner) Conflicts() [][]bool { return p.conflicts }

// CompatibleSet reports whether the selection is pairwise conflict-free.
func (p *Planner) CompatibleSet(sel []bool) bool {
	ids := p.selectedIDs(sel)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if p.conflicts[ids[i]][ids[j]] {
				return false
			}
		}
	}
	return true
}

func (p *Planner) selectedIDs(sel []bool) []int {
	var ids []int
	for i, s := range sel {
		if s {
			ids = append(ids, i)
		}
	}
	return ids
}

// EvaluateCost is Evaluate without materializing plan trees, memoized per
// block and per producer on the relevant selection fingerprint. The probing
// and enumeration loops call this; only the final decision materializes
// trees.
func (p *Planner) EvaluateCost(sel []bool) (float64, error) {
	if len(sel) != len(p.options) {
		return 0, fmt.Errorf("costgraph: selection length %d, want %d", len(sel), len(p.options))
	}
	total := 0.0
	for _, b := range p.coords.Blocks {
		key := p.fingerprint(b.ID, sel, -1)
		if c, ok := p.blockCache[key]; ok {
			total += c
			continue
		}
		bp, err := p.blockPlan(b, sel)
		if err != nil {
			return 0, err
		}
		p.blockCache[key] = bp.Cost
		total += bp.Cost
	}
	for i, o := range p.options {
		if !sel[i] {
			continue
		}
		var key string
		if len(o.Occs) > 0 {
			key = fmt.Sprintf("%d|%s", o.ID, p.fingerprint(o.Occs[0].Block, sel, o.ID))
		} else {
			key = fmt.Sprintf("%d|", o.ID)
		}
		if c, ok := p.prodCache[key]; ok {
			total += c
			continue
		}
		pp, err := p.producer(o, sel)
		if err != nil {
			return 0, err
		}
		p.prodCache[key] = pp.Charged
		total += pp.Charged
	}
	return total, nil
}

// fingerprint encodes which of a block's candidate options are selected
// (excluding one option, for producer keys).
func (p *Planner) fingerprint(blockID int, sel []bool, exclude int) string {
	ids := p.blockOpts[blockID]
	buf := make([]byte, 0, len(ids)*4+8)
	buf = append(buf, byte(blockID), byte(blockID>>8))
	for _, id := range ids {
		if id != exclude && sel[id] {
			buf = append(buf, byte(id), byte(id>>8), ',')
		}
	}
	return string(buf)
}

// Evaluate computes the total per-iteration cost of a selection: the
// residual chain costs of every block (selected spans contracted to reuse
// leaves) plus each selected option's producer charge (apportioned for CSE,
// amortized over iterations for LSE). Group options (cross-block sums)
// charge one producer and make their member blocks free.
func (p *Planner) Evaluate(sel []bool) (float64, []*BlockPlan, []*ProducerPlan, error) {
	if len(sel) != len(p.options) {
		return 0, nil, nil, fmt.Errorf("costgraph: selection length %d, want %d", len(sel), len(p.options))
	}
	// Residual block costs.
	var plans []*BlockPlan
	total := 0.0
	for _, b := range p.coords.Blocks {
		bp, err := p.blockPlan(b, sel)
		if err != nil {
			return 0, nil, nil, err
		}
		plans = append(plans, bp)
		total += bp.Cost
	}
	// Producer charges.
	var producers []*ProducerPlan
	for i, o := range p.options {
		if !sel[i] {
			continue
		}
		pp, err := p.producer(o, sel)
		if err != nil {
			return 0, nil, nil, err
		}
		producers = append(producers, pp)
		total += pp.Charged
	}
	return total, plans, producers, nil
}

// blockPlan computes the optimal parenthesization of one block under a
// selection: maximal selected spans become reuse leaves; the rest is the
// classic matrix-chain DP priced by the cost model.
func (p *Planner) blockPlan(b *chain.Block, sel []bool) (*BlockPlan, error) {
	items, err := p.contract(b, sel)
	if err != nil {
		return nil, err
	}
	root, c, err := p.chainDP(items)
	if err != nil {
		return nil, fmt.Errorf("block %d (%s): %w", b.ID, b.Key(), err)
	}
	return &BlockPlan{Block: b, Root: root, Cost: c}, nil
}

// item is a contracted chain element: a single atom or a reused span.
type item struct {
	lo, hi  int
	meta    sparsity.Meta
	local   bool
	reuse   *search.Option
	flipped bool
	// sym/t identify single-atom items for TSMM detection (t(X)·X).
	sym string
	t   bool
	// cost is the item's own charge inside this block (e.g. transposing a
	// flipped reuse).
	cost float64
}

// contract replaces maximal selected spans with reuse leaves.
func (p *Planner) contract(b *chain.Block, sel []bool) ([]item, error) {
	var items []item
	n := b.Len()
	for i := 0; i < n; {
		// Find the longest selected span starting at i.
		best := -1
		var bestRef occRef
		for j := n - 1; j > i; j-- {
			ref, ok := p.occIndex[[3]int{b.ID, i, j}]
			if !ok {
				continue
			}
			if sel[ref.opt.ID] {
				best = j
				bestRef = ref
				break
			}
		}
		if best >= 0 {
			m, err := p.coords.SpanMeta(b, i, best, p.cfg.Est)
			if err != nil {
				return nil, err
			}
			it := item{lo: i, hi: best, meta: m, local: p.cfg.Model.FitsLocal(m), reuse: bestRef.opt, flipped: bestRef.flipped}
			if bestRef.flipped {
				// Reusing the transposed cached value costs a transpose.
				_, bd, _ := p.cfg.Model.Transpose(m, it.local)
				it.cost = bd.Total()
			}
			items = append(items, it)
			i = best + 1
			continue
		}
		m, err := p.coords.AtomMeta(b.Atoms[i], p.cfg.Est)
		if err != nil {
			return nil, err
		}
		a := b.Atoms[i]
		items = append(items, item{lo: i, hi: i, meta: m, local: p.cfg.Model.FitsLocal(m), sym: a.Sym, t: a.T})
		i++
	}
	return items, nil
}

// tsmmPair reports whether two adjacent single-atom items form a
// transpose-self product t(X)·X or X·t(X).
func tsmmPair(l, r item) bool {
	if l.sym == "" || r.sym == "" || l.sym != r.sym {
		return false
	}
	return l.t != r.t
}

// chainDP runs the cost-model-priced matrix-chain ordering over contracted
// items and returns the optimal tree and cost.
func (p *Planner) chainDP(items []item) (*OpNode, float64, error) {
	n := len(items)
	if n == 0 {
		return nil, 0, nil
	}
	type cell struct {
		cost  float64
		split int
		meta  sparsity.Meta
		local bool
	}
	dp := make([][]cell, n)
	for i := range dp {
		dp[i] = make([]cell, n)
		dp[i][i] = cell{cost: items[i].cost, split: -1, meta: items[i].meta, local: items[i].local}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span-1 < n; i++ {
			j := i + span - 1
			best := cell{cost: math.Inf(1), split: -1}
			for k := i; k < j; k++ {
				l, r := dp[i][k], dp[k+1][j]
				if l.meta.Cols != r.meta.Rows {
					return nil, 0, fmt.Errorf("costgraph: chain dims %d vs %d", l.meta.Cols, r.meta.Rows)
				}
				tsmm := i == k && k+1 == j && tsmmPair(items[i], items[j])
				outMeta, bd, outLocal := p.cfg.Model.MulHinted(l.meta, r.meta, l.local, r.local, tsmm)
				c := l.cost + r.cost + bd.Total()
				if c < best.cost {
					best = cell{cost: c, split: k, meta: outMeta, local: outLocal}
				}
			}
			dp[i][j] = best
		}
	}
	// Rebuild the tree.
	var build func(i, j int) *OpNode
	build = func(i, j int) *OpNode {
		c := dp[i][j]
		node := &OpNode{Lo: items[i].lo, Hi: items[j].hi, Meta: c.meta, Local: c.local}
		if i == j {
			node.ReuseOf = items[i].reuse
			node.Flipped = items[i].flipped
			return node
		}
		node.L = build(i, c.split)
		node.R = build(c.split+1, j)
		return node
	}
	return build(0, n-1), dp[0][n-1].cost, nil
}

// producer computes how a selected option's value is produced and what it
// charges per iteration.
func (p *Planner) producer(o *search.Option, sel []bool) (*ProducerPlan, error) {
	if o.Kind == search.CSEGroup {
		return p.groupProducer(o, sel)
	}
	// The producer computes the canonical span, reusing nested selected
	// options. Build a synthetic block over the canonical atoms; nested
	// occurrences are found through the option's first occurrence.
	occ := o.Occs[0]
	b := p.coords.Blocks[occ.Block]
	items, err := p.contractRange(b, occ.Lo, occ.Hi, sel, o)
	if err != nil {
		return nil, err
	}
	root, c, err := p.chainDP(items)
	if err != nil {
		return nil, fmt.Errorf("producer %s: %w", o.Key, err)
	}
	pp := &ProducerPlan{Option: o, Root: root, Cost: c}
	if o.Kind == search.LSE {
		pp.Charged = c / float64(p.cfg.Iterations)
	} else {
		pp.Charged = c
	}
	return pp, nil
}

// contractRange contracts the sub-chain [lo, hi] of a block, reusing
// selected options strictly nested inside (excluding self).
func (p *Planner) contractRange(b *chain.Block, lo, hi int, sel []bool, self *search.Option) ([]item, error) {
	var items []item
	for i := lo; i <= hi; {
		best := -1
		var bestRef occRef
		for j := hi; j > i; j-- {
			if i == lo && j == hi {
				continue // skip self span
			}
			ref, ok := p.occIndex[[3]int{b.ID, i, j}]
			if !ok || ref.opt == self {
				continue
			}
			if sel[ref.opt.ID] {
				best = j
				bestRef = ref
				break
			}
		}
		if best >= 0 {
			m, err := p.coords.SpanMeta(b, i, best, p.cfg.Est)
			if err != nil {
				return nil, err
			}
			it := item{lo: i, hi: best, meta: m, local: p.cfg.Model.FitsLocal(m), reuse: bestRef.opt, flipped: bestRef.flipped}
			if bestRef.flipped {
				_, bd, _ := p.cfg.Model.Transpose(m, it.local)
				it.cost = bd.Total()
			}
			items = append(items, it)
			i = best + 1
			continue
		}
		m, err := p.coords.AtomMeta(b.Atoms[i], p.cfg.Est)
		if err != nil {
			return nil, err
		}
		a := b.Atoms[i]
		items = append(items, item{lo: i, hi: i, meta: m, local: p.cfg.Model.FitsLocal(m), sym: a.Sym, t: a.T})
		i++
	}
	return items, nil
}

// groupProducer charges a cross-block grouped sum: the member chains are
// produced (reusing their own selected spans), then added once.
func (p *Planner) groupProducer(o *search.Option, sel []bool) (*ProducerPlan, error) {
	// Pair occurrences: [0],[1] form the sum; later pairs reuse it.
	total := 0.0
	var lastMeta sparsity.Meta
	for i := 0; i < 2 && i < len(o.Occs); i++ {
		occ := o.Occs[i]
		b := p.coords.Blocks[occ.Block]
		items, err := p.contractRange(b, occ.Lo, occ.Hi, sel, o)
		if err != nil {
			return nil, err
		}
		_, c, err := p.chainDP(items)
		if err != nil {
			return nil, err
		}
		total += c
		m, err := p.coords.SpanMeta(b, occ.Lo, occ.Hi, p.cfg.Est)
		if err != nil {
			return nil, err
		}
		lastMeta = m
	}
	// One addition of the two members.
	_, bd, _ := p.cfg.Model.EWise(cost.EWAdd, lastMeta, lastMeta, p.cfg.Model.FitsLocal(lastMeta), p.cfg.Model.FitsLocal(lastMeta))
	total += bd.Total()
	return &ProducerPlan{Option: o, Cost: total, Charged: total}, nil
}

// BaselineTrees returns each block's optimal tree with no eliminations —
// the "original execution order" the conservative strategy preserves.
func (p *Planner) BaselineTrees() ([]*BlockPlan, float64, error) {
	sel := make([]bool, len(p.options))
	total, plans, _, err := p.Evaluate(sel)
	return plans, total, err
}

// BuildTime reports the building-phase wall time so far.
func (p *Planner) BuildTime() time.Duration { return p.buildTime }

// Decide packages an explicit selection into a Decision (used by the
// conservative/aggressive/automatic strategies, which choose options by
// rule rather than by probing).
func (p *Planner) Decide(sel []bool) (*Decision, error) {
	start := time.Now()
	total, plans, producers, err := p.Evaluate(sel)
	if err != nil {
		return nil, err
	}
	d := &Decision{
		BlockPlans: plans,
		Producers:  producers,
		TotalCost:  total,
		BuildTime:  p.buildTime,
		ProbeTime:  time.Since(start),
		Evaluated:  1,
	}
	for i, s := range sel {
		if s {
			d.Selected = append(d.Selected, p.options[i])
		}
	}
	return d, nil
}
