package costgraph

import (
	"math/rand"
	"testing"

	"remac/internal/search"
)

// Property tests of the planner invariants the probing correctness rests
// on. They run on the DFP cost graph with randomized selections.

func randomCompatibleSelection(p *Planner, rng *rand.Rand) []bool {
	sel := make([]bool, len(p.Options()))
	order := rng.Perm(len(sel))
	for _, i := range order {
		if rng.Float64() < 0.4 && p.compatibleWith(sel, i) {
			sel[i] = true
		}
	}
	return sel
}

func TestPropEvaluateDeterministic(t *testing.T) {
	p := plannerFor(t, tallResolver())
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		sel := randomCompatibleSelection(p, rng)
		c1, err := p.EvaluateCost(sel)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := p.EvaluateCost(sel)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("EvaluateCost not deterministic: %g vs %g", c1, c2)
		}
	}
}

func TestPropEvaluateMatchesFullEvaluate(t *testing.T) {
	// The memoized cost-only path must agree with the tree-materializing
	// path (same DP, same producers).
	p := plannerFor(t, tallResolver())
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		sel := randomCompatibleSelection(p, rng)
		fast, err := p.EvaluateCost(sel)
		if err != nil {
			t.Fatal(err)
		}
		full, _, _, err := p.Evaluate(sel)
		if err != nil {
			t.Fatal(err)
		}
		if diff := fast - full; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("EvaluateCost %g != Evaluate %g", fast, full)
		}
	}
}

func TestPropProbeNotWorseThanRandomSelections(t *testing.T) {
	p := plannerFor(t, fatResolver())
	probe, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		sel := randomCompatibleSelection(p, rng)
		c, err := p.EvaluateCost(sel)
		if err != nil {
			t.Fatal(err)
		}
		if c < probe.TotalCost*0.999 {
			keys := []string{}
			for i, s := range sel {
				if s {
					keys = append(keys, p.Options()[i].Key)
				}
			}
			t.Fatalf("random selection %v (cost %g) beats the probe (%g)", keys, c, probe.TotalCost)
		}
	}
}

func TestPropProducerNestingTerminates(t *testing.T) {
	// With everything compatible selected, producer evaluation recurses
	// through nested reuses; it must terminate and stay positive.
	p := plannerFor(t, tallResolver())
	sel := make([]bool, len(p.Options()))
	for i := range sel {
		if p.compatibleWith(sel, i) && p.Options()[i].Kind != search.CSEGroup {
			sel[i] = true
		}
	}
	c, err := p.EvaluateCost(sel)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("cost %g", c)
	}
}

func TestPropBlockPlansTileTheChains(t *testing.T) {
	p := plannerFor(t, tallResolver())
	d, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, bp := range d.BlockPlans {
		// Leaves (atoms + reuses) must tile [0, len-1] without gaps.
		covered := make([]bool, bp.Block.Len())
		bp.Root.Walk(func(n *OpNode) {
			if n.L == nil && n.R == nil {
				for i := n.Lo; i <= n.Hi; i++ {
					if covered[i] {
						t.Fatalf("block %d: atom %d covered twice", bp.Block.ID, i)
					}
					covered[i] = true
				}
			}
		})
		for i, c := range covered {
			if !c {
				t.Fatalf("block %d: atom %d not covered", bp.Block.ID, i)
			}
		}
	}
}
