package costgraph

import (
	"strings"
	"testing"
	"time"

	"remac/internal/chain"
	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/lang"
	"remac/internal/plan"
	"remac/internal/search"
	"remac/internal/sparsity"
)

type res map[string]sparsity.Meta

func (r res) MetaFor(sym string) (sparsity.Meta, bool) {
	m, ok := r[strings.SplitN(sym, "#", 2)[0]]
	return m, ok
}
func (r res) IsSymmetric(string) bool { return false }

const dfpSrc = `
#@symmetric H
A = read("A")
b = read("b")
H = read("H")
x = read("x")
i = 0
while (i < 15) {
    g = t(A) %*% (A %*% x - b)
    d = H %*% g
    H = H - (H %*% t(A) %*% A %*% d %*% t(d) %*% t(A) %*% A %*% H) / as.scalar(t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d) + (d %*% t(d)) / as.scalar(2 * (t(d) %*% t(A) %*% A %*% d))
    x = x - 0.1 * d
    i = i + 1
}
`

// tallResolver mimics cri1: tall, few columns, dense — where the paper
// finds the LSE of AᵀA strongly beneficial.
func tallResolver() res {
	return res{
		"A": sparsity.MetaDims(116_800_000, 47, 0.6),
		"b": sparsity.MetaDims(116_800_000, 1, 1),
		"H": sparsity.MetaDims(47, 47, 1),
		"x": sparsity.MetaDims(47, 1, 1),
		"g": sparsity.MetaDims(47, 1, 1),
		"i": sparsity.MetaDims(1, 1, 1),
	}
}

// fatResolver mimics cri3: many columns, sparse — where the LSE of AᵀA is
// detrimental (AᵀA is 15K×15K and costly to build and use).
func fatResolver() res {
	return res{
		"A": sparsity.MetaDims(58_400_000, 15_000, 2.6e-3),
		"b": sparsity.MetaDims(58_400_000, 1, 1),
		"H": sparsity.MetaDims(15_000, 15_000, 1),
		"x": sparsity.MetaDims(15_000, 1, 1),
		"g": sparsity.MetaDims(15_000, 1, 1),
		"i": sparsity.MetaDims(1, 1, 1),
	}
}

func searchedDFP(t *testing.T, r res) *search.Result {
	t.Helper()
	plans, err := plan.Build(lang.MustParse(dfpSrc))
	if err != nil {
		t.Fatal(err)
	}
	sym := plan.SymTable(plans.Symmetric)
	var roots []*plan.Node
	for _, root := range plans.SearchRoots() {
		roots = append(roots, plan.Normalize(root, sym))
	}
	c, err := chain.Extract(roots, r, sym)
	if err != nil {
		t.Fatal(err)
	}
	return search.BlockWise(c, sparsity.Metadata{})
}

func plannerFor(t *testing.T, r res) *Planner {
	t.Helper()
	cfg := Config{
		Model:      cost.NewModel(cluster.DefaultConfig(), sparsity.Metadata{}),
		Est:        sparsity.Metadata{},
		Iterations: 15,
	}
	p, err := NewPlanner(cfg, searchedDFP(t, r))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Model: nil, Est: sparsity.Metadata{}, Iterations: 10},
		{Model: cost.NewModel(cluster.DefaultConfig(), nil), Est: nil, Iterations: 10},
		{Model: cost.NewModel(cluster.DefaultConfig(), nil), Est: sparsity.Metadata{}, Iterations: 0},
	}
	for i, cfg := range cases {
		if _, err := NewPlanner(cfg, &search.Result{Coords: &chain.Coordinates{}}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEvaluateBaseline(t *testing.T) {
	p := plannerFor(t, tallResolver())
	sel := make([]bool, len(p.Options()))
	total, plans, producers, err := p.Evaluate(sel)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatal("baseline cost must be positive")
	}
	if len(producers) != 0 {
		t.Fatal("no producers with empty selection")
	}
	if len(plans) != len(p.coords.Blocks) {
		t.Fatalf("plans = %d, blocks = %d", len(plans), len(p.coords.Blocks))
	}
	// Selection length mismatch must error.
	if _, _, _, err := p.Evaluate(make([]bool, 1)); err == nil {
		t.Fatal("bad selection length accepted")
	}
}

func TestSingleOptionChangesCost(t *testing.T) {
	p := plannerFor(t, tallResolver())
	sel := make([]bool, len(p.Options()))
	base, _, _, _ := p.Evaluate(sel)
	changed := false
	for i := range p.Options() {
		sel[i] = true
		c, _, _, err := p.Evaluate(sel)
		sel[i] = false
		if err != nil {
			t.Fatalf("option %s: %v", p.Options()[i].Key, err)
		}
		if c != base {
			changed = true
		}
	}
	if !changed {
		t.Fatal("no option changes the modelled cost")
	}
}

func TestProbeImprovesOverBaseline(t *testing.T) {
	p := plannerFor(t, tallResolver())
	_, base, err := p.BaselineTrees()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalCost > base {
		t.Fatalf("probe cost %g exceeds baseline %g", d.TotalCost, base)
	}
	if len(d.Selected) == 0 {
		t.Fatal("probe selected nothing on the tall dataset; the AᵀA LSE should win")
	}
	// Selected options must be pairwise compatible.
	for i := 0; i < len(d.Selected); i++ {
		for j := i + 1; j < len(d.Selected); j++ {
			if search.Conflicts(d.Selected[i], d.Selected[j]) {
				t.Fatal("probe selected contradictory options")
			}
		}
	}
}

func TestProbeSelectsATAOnTallRejectsOnFat(t *testing.T) {
	// The paper's central adaptive finding (Fig 9): the LSE of AᵀA wins on
	// tall datasets (cri1/red1) and is detrimental on fat ones (cri3/red3).
	atAKey := chain.CanonicalKey([]chain.Atom{{Sym: "A", T: true}, {Sym: "A"}})

	tall, err := plannerFor(t, tallResolver()).Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !containsKey(tall.Keys(), atAKey) {
		t.Errorf("tall dataset: AᵀA not selected; selected = %v", tall.Keys())
	}

	fat, err := plannerFor(t, fatResolver()).Probe()
	if err != nil {
		t.Fatal(err)
	}
	if containsKey(fat.Keys(), atAKey) {
		t.Errorf("fat dataset: detrimental AᵀA selected; selected = %v", fat.Keys())
	}
}

func containsKey(keys []string, k string) bool {
	for _, key := range keys {
		if key == k {
			return true
		}
	}
	return false
}

func TestProbeDeterministic(t *testing.T) {
	d1, err := plannerFor(t, tallResolver()).Probe()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := plannerFor(t, tallResolver()).Probe()
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := d1.Keys(), d2.Keys()
	if len(k1) != len(k2) {
		t.Fatalf("non-deterministic selection: %v vs %v", k1, k2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("non-deterministic selection: %v vs %v", k1, k2)
		}
	}
}

func TestEnumerateAtLeastAsGoodAsProbe(t *testing.T) {
	p := plannerFor(t, tallResolver())
	probe, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	enum, err := p.Enumerate(DFS, EnumBudget{MaxCombos: 200_000, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Enumeration explores a superset of the greedy path over useful
	// options; within budget it must not be worse by more than noise.
	if enum.TotalCost > probe.TotalCost*1.001 {
		t.Fatalf("enum cost %g worse than probe %g", enum.TotalCost, probe.TotalCost)
	}
	// And the DP must be dramatically cheaper in evaluations.
	if probe.Evaluated >= enum.Evaluated {
		t.Fatalf("probe evaluated %d combos, enum %d; DP should be cheaper", probe.Evaluated, enum.Evaluated)
	}
}

func TestEnumerateBFSMatchesDFSWithinBudget(t *testing.T) {
	p := plannerFor(t, tallResolver())
	dfs, err := p.Enumerate(DFS, EnumBudget{MaxCombos: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := p.Enumerate(BFS, EnumBudget{MaxCombos: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	// Same search space, different order: best costs should agree closely.
	ratio := dfs.TotalCost / bfs.TotalCost
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("DFS %g vs BFS %g diverge", dfs.TotalCost, bfs.TotalCost)
	}
}

func TestEnumerateRespectsBudget(t *testing.T) {
	p := plannerFor(t, tallResolver())
	d, err := p.Enumerate(DFS, EnumBudget{MaxCombos: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The filter phase alone evaluates each option once; the budget caps
	// the total.
	if d.Evaluated > len(p.Options())+20 {
		t.Fatalf("budget ignored: %d evaluations", d.Evaluated)
	}
}

func TestBlockPlanTreeShape(t *testing.T) {
	p := plannerFor(t, tallResolver())
	d, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, bp := range d.BlockPlans {
		if bp.Root == nil {
			t.Fatal("nil root")
		}
		// Every interior node spans its children contiguously.
		bp.Root.Walk(func(n *OpNode) {
			if n.L != nil && n.R != nil {
				if n.L.Lo != n.Lo || n.R.Hi != n.Hi || n.L.Hi+1 > n.R.Lo {
					// Reuse leaves contract spans; children must tile.
					if n.L.Hi >= n.R.Lo {
						t.Fatalf("children overlap: [%d,%d] [%d,%d]", n.L.Lo, n.L.Hi, n.R.Lo, n.R.Hi)
					}
				}
			}
		})
	}
}

func TestProducersChargedOnceAndAmortized(t *testing.T) {
	p := plannerFor(t, tallResolver())
	d, err := p.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range d.Producers {
		if pp.Cost <= 0 {
			t.Errorf("producer %s has non-positive cost", pp.Option.Key)
		}
		switch pp.Option.Kind {
		case search.LSE:
			want := pp.Cost / 15
			if diff := pp.Charged - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("LSE %s charged %g, want %g (cost/iterations)", pp.Option.Key, pp.Charged, want)
			}
		case search.CSE:
			if pp.Charged != pp.Cost {
				t.Errorf("CSE %s charged %g, want full producer cost %g once per iteration", pp.Option.Key, pp.Charged, pp.Cost)
			}
		}
	}
}

func TestBaselineTrees(t *testing.T) {
	p := plannerFor(t, tallResolver())
	plans, total, err := p.BaselineTrees()
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 || len(plans) == 0 {
		t.Fatal("baseline trees missing")
	}
	for _, bp := range plans {
		bp.Root.Walk(func(n *OpNode) {
			if n.ReuseOf != nil {
				t.Fatal("baseline tree contains reuse nodes")
			}
		})
	}
}

func TestEnumModeString(t *testing.T) {
	if DFS.String() != "DFS" || BFS.String() != "BFS" {
		t.Fatal("mode names changed")
	}
}
