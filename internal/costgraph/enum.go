package costgraph

import (
	"sort"
	"time"
)

// This file implements the brute-force enumeration baselines of §6.3.3:
// combinations of elimination options enumerated depth-first or
// breadth-first, each evaluated through the cost model. Both prune
// contradictory selections; both take a budget (combination count and
// deadline) since the combinatorial explosion makes full enumeration
// infeasible for DFP-sized programs (the paper measured over three days
// for GNMF).

// EnumMode selects the traversal order.
type EnumMode int

const (
	// DFS enumerates include/exclude decisions depth-first.
	DFS EnumMode = iota
	// BFS expands selections level by level (one more option per level).
	BFS
)

// String names the mode.
func (m EnumMode) String() string {
	if m == BFS {
		return "BFS"
	}
	return "DFS"
}

// EnumBudget bounds an enumeration run.
type EnumBudget struct {
	// MaxCombos caps evaluated combinations (0 = unlimited).
	MaxCombos int
	// Deadline caps wall time (0 = unlimited).
	Deadline time.Duration
}

// Enumerate evaluates option combinations exhaustively (within budget) and
// returns the best found. Options that cannot improve anything on their own
// are filtered first, like the paper's enumeration which considers the
// "millions of possible combinations" of useful options rather than the
// full power set.
func (p *Planner) Enumerate(mode EnumMode, budget EnumBudget) (*Decision, error) {
	start := time.Now()
	baseSel := make([]bool, len(p.options))
	base, err := p.EvaluateCost(baseSel)
	if err != nil {
		return nil, err
	}
	evaluated := 1

	// Filter to options with standalone benefit.
	var useful []int
	standalone := map[int]float64{}
	for i := range p.options {
		sel := make([]bool, len(p.options))
		sel[i] = true
		c, err := p.EvaluateCost(sel)
		if err != nil {
			return nil, err
		}
		evaluated++
		if c < base {
			useful = append(useful, i)
			standalone[i] = c
		}
	}
	// Deterministic order: strongest standalone benefit first, so budget-
	// capped runs cover the promising corner of the combination space.
	sort.SliceStable(useful, func(a, b int) bool {
		ca, cb := standalone[useful[a]], standalone[useful[b]]
		if ca != cb {
			return ca < cb
		}
		return useful[a] < useful[b]
	})

	bestSel := make([]bool, len(p.options))
	bestCost := base
	deadline := time.Time{}
	if budget.Deadline > 0 {
		deadline = start.Add(budget.Deadline)
	}
	outOfBudget := func() bool {
		if budget.MaxCombos > 0 && evaluated >= budget.MaxCombos {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	try := func(sel []bool) error {
		c, err := p.EvaluateCost(sel)
		if err != nil {
			return err
		}
		evaluated++
		if c < bestCost {
			bestCost = c
			copy(bestSel, sel)
		}
		return nil
	}

	switch mode {
	case DFS:
		sel := make([]bool, len(p.options))
		var rec func(idx int) error
		rec = func(idx int) error {
			if outOfBudget() || idx >= len(useful) {
				return nil
			}
			i := useful[idx]
			// Include branch first (conflict pruning), so the promising
			// corner of the space is covered before the budget trips.
			if p.compatibleWith(sel, i) {
				sel[i] = true
				if err := try(sel); err != nil {
					return err
				}
				if err := rec(idx + 1); err != nil {
					return err
				}
				sel[i] = false
			}
			if outOfBudget() {
				return nil
			}
			// Exclude branch.
			return rec(idx + 1)
		}
		if err := rec(0); err != nil {
			return nil, err
		}
	case BFS:
		frontier := [][]bool{make([]bool, len(p.options))}
		for level := 0; level < len(useful) && len(frontier) > 0 && !outOfBudget(); level++ {
			var next [][]bool
			for _, sel := range frontier {
				if outOfBudget() {
					break
				}
				for _, i := range useful {
					if sel[i] || !p.compatibleWith(sel, i) {
						continue
					}
					// Only extend with options after the last selected one
					// to avoid revisiting permutations.
					if lastSelected(sel, useful) >= indexOf(useful, i) {
						continue
					}
					child := append([]bool(nil), sel...)
					child[i] = true
					if err := try(child); err != nil {
						return nil, err
					}
					next = append(next, child)
					if outOfBudget() {
						break
					}
				}
			}
			frontier = next
		}
	}

	total, plans, producers, err := p.Evaluate(bestSel)
	if err != nil {
		return nil, err
	}
	d := &Decision{
		BlockPlans: plans,
		Producers:  producers,
		TotalCost:  total,
		BuildTime:  p.buildTime,
		ProbeTime:  time.Since(start),
		Evaluated:  evaluated,
	}
	for i, s := range bestSel {
		if s {
			d.Selected = append(d.Selected, p.options[i])
		}
	}
	return d, nil
}

func lastSelected(sel []bool, useful []int) int {
	last := -1
	for pos, i := range useful {
		if sel[i] {
			last = pos
		}
	}
	return last
}

func indexOf(useful []int, v int) int {
	for pos, i := range useful {
		if i == v {
			return pos
		}
	}
	return -1
}
