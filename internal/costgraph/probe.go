package costgraph

import (
	"sort"
	"time"

	"remac/internal/search"
)

// This file implements the probing phase of Algorithm 1: the dynamic
// programming process that minimizes the accumulated cost of the top
// operator. Candidate (CSE) costs are handled by marginal evaluation: an
// option's apportioned costs are picked only when, in the joint upstream of
// its occurrences, the accumulated cost drops (the pick rule of §4.3.2);
// options whose candidate costs never help are discarded (the withdraw
// rule). The pass repeats until no pick or withdrawal changes the result —
// each pass corresponds to one resolution sweep over the cost graph.

// Probe runs adaptive elimination and returns the efficient combination.
func (p *Planner) Probe() (*Decision, error) {
	start := time.Now()
	sel := make([]bool, len(p.options))
	best, err := p.EvaluateCost(sel)
	if err != nil {
		return nil, err
	}
	evaluated := 1

	// Order options by weight (span length × occurrence count, LSE first):
	// long, frequent spans resolve first so nested candidates see their
	// context, mirroring the upstream-first recursion of probe().
	order := make([]int, len(p.options))
	for i := range order {
		order[i] = i
	}
	weight := func(o *search.Option) int {
		w := 0
		for _, occ := range o.Occs {
			w += occ.Len()
		}
		if o.Kind == search.LSE {
			w *= 2
		}
		return w
	}
	sort.SliceStable(order, func(a, b int) bool {
		oa, ob := p.options[order[a]], p.options[order[b]]
		wa, wb := weight(oa), weight(ob)
		if wa != wb {
			return wa > wb
		}
		return oa.ID < ob.ID
	})

	const eps = 1e-12
	for pass := 0; pass < 8; pass++ {
		improved := false
		// Pick phase: try adding each compatible option.
		for _, i := range order {
			if sel[i] || !p.compatibleWith(sel, i) {
				continue
			}
			sel[i] = true
			c, err := p.EvaluateCost(sel)
			if err != nil {
				return nil, err
			}
			evaluated++
			if c < best-eps {
				best = c
				improved = true
			} else {
				sel[i] = false
			}
		}
		// Withdraw phase: drop options whose candidate costs stopped
		// contributing (their benefit may have been subsumed by later
		// picks).
		for _, i := range order {
			if !sel[i] {
				continue
			}
			sel[i] = false
			c, err := p.EvaluateCost(sel)
			if err != nil {
				return nil, err
			}
			evaluated++
			if c < best-eps {
				best = c
				improved = true
			} else {
				sel[i] = true
			}
		}
		if !improved {
			break
		}
	}

	total, plans, producers, err := p.Evaluate(sel)
	if err != nil {
		return nil, err
	}
	d := &Decision{
		BlockPlans: plans,
		Producers:  producers,
		TotalCost:  total,
		BuildTime:  p.buildTime,
		ProbeTime:  time.Since(start),
		Evaluated:  evaluated,
	}
	for i, s := range sel {
		if s {
			d.Selected = append(d.Selected, p.options[i])
		}
	}
	return d, nil
}

func (p *Planner) compatibleWith(sel []bool, i int) bool {
	for j, s := range sel {
		if s && p.conflicts[i][j] {
			return false
		}
	}
	return true
}
