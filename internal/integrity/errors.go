package integrity

import (
	"errors"
	"fmt"
)

// ErrCorruption is the class sentinel every unrepairable-corruption error
// matches via errors.Is.
var ErrCorruption = errors.New("integrity: corrupted block")

// Error reports a detected corruption that lineage repair could not clear
// within the bounded retry budget (an at-rest flip re-reads the same bad
// bytes every attempt).
type Error struct {
	// Op labels the operator whose payload was corrupted.
	Op string
	// Via is the detector that fired: "digest" or "abft".
	Via string
	// Attempts counts the repair attempts charged before giving up.
	Attempts int
}

func (e *Error) Error() string {
	return fmt.Sprintf("integrity: corrupted block in %s (detected by %s, unrepaired after %d attempts)", e.Op, e.Via, e.Attempts)
}

// Unwrap makes errors.Is(err, ErrCorruption) match.
func (e *Error) Unwrap() error { return ErrCorruption }

// ErrNonFinite is the class sentinel every non-finite-value error matches
// via errors.Is.
var ErrNonFinite = errors.New("integrity: non-finite value")

// NumericError reports a NaN or Inf caught by the non-finite guard — a
// divergent iteration, not an injected fault.
type NumericError struct {
	// Op labels the scan that caught it (operator or iteration variable).
	Op string
	// Row, Col locate the first poisoned element.
	Row, Col int
	// Value is the offending value.
	Value float64
}

func (e *NumericError) Error() string {
	return fmt.Sprintf("integrity: non-finite value %v at (%d,%d) in %s", e.Value, e.Row, e.Col, e.Op)
}

// Unwrap makes errors.Is(err, ErrNonFinite) match.
func (e *NumericError) Unwrap() error { return ErrNonFinite }
