// Package integrity implements end-to-end data-integrity checking for the
// simulated cluster: fast block digests verified on every charged
// transmission and DFS read, algorithm-based fault tolerance (ABFT) checksum
// validation for distributed multiplies, and non-finite guards that stop
// divergent iterations from propagating poison.
//
// The threat model splits in two. Fail-stop faults (crashes, lost
// transmissions, stragglers) are loud — the fault model of internal/fault
// charges their recovery cost and results stay exact. Silent corruption is
// different: a flipped bit in a payload produces a *wrong* value that every
// downstream kernel happily consumes. This package supplies the detection
// half of the loop; internal/distmat closes it by treating a corrupted block
// as a lost partition of its producer and re-running lineage recovery.
//
// Coverage is layered. Digests (an FNV-1a fold over the logical payload)
// catch any bit flip on data *in flight* — transmissions and DFS reads —
// because the received bytes no longer hash to the producer's digest. They
// cannot catch a flip that happens *inside* a distributed multiply, before
// the output digest is computed: for that, ABFT maintains column-checksum
// vectors so C = A·B is validated by comparing checksum(A)·B against
// checksum(C) within a scaled tolerance. A NaN/Inf scan is the third layer,
// aimed not at injected faults but at numerically divergent programs.
package integrity

import (
	"fmt"
	"math"

	"remac/internal/matrix"
)

// VerifyMode selects how much of the integrity layer a run enables.
type VerifyMode int

const (
	// VerifyOff disables all corruption detection: flipped bits propagate.
	VerifyOff VerifyMode = iota
	// VerifyDigest checks block digests on every charged transmission and
	// DFS read. It catches in-flight corruption but not flips inside a
	// distributed multiply's compute phase.
	VerifyDigest
	// VerifyABFT adds checksum-vector validation of the distributed
	// multiply paths on top of digests, closing the compute-phase gap.
	VerifyABFT
)

// String names the mode as the -verify flag spells it.
func (m VerifyMode) String() string {
	switch m {
	case VerifyOff:
		return "off"
	case VerifyDigest:
		return "digest"
	case VerifyABFT:
		return "abft"
	default:
		return fmt.Sprintf("VerifyMode(%d)", int(m))
	}
}

// ParseVerifyMode parses the -verify flag value.
func ParseVerifyMode(s string) (VerifyMode, error) {
	switch s {
	case "off", "":
		return VerifyOff, nil
	case "digest":
		return VerifyDigest, nil
	case "abft":
		return VerifyABFT, nil
	}
	return VerifyOff, fmt.Errorf("integrity: unknown verify mode %q (want off, digest or abft)", s)
}

// GuardMode selects how often the non-finite scan runs.
type GuardMode int

const (
	// GuardOff disables the scan: NaN/Inf values propagate into results.
	GuardOff GuardMode = iota
	// GuardPerIteration scans every loop-bound value at iteration end.
	GuardPerIteration
	// GuardPerOp scans every charged operator's output as it is produced,
	// pinpointing the first poisoned operator.
	GuardPerOp
)

// String names the mode as the -nan-guard flag spells it.
func (m GuardMode) String() string {
	switch m {
	case GuardOff:
		return "off"
	case GuardPerIteration:
		return "iter"
	case GuardPerOp:
		return "op"
	default:
		return fmt.Sprintf("GuardMode(%d)", int(m))
	}
}

// ParseGuardMode parses the -nan-guard flag value.
func ParseGuardMode(s string) (GuardMode, error) {
	switch s {
	case "off", "":
		return GuardOff, nil
	case "iter":
		return GuardPerIteration, nil
	case "op":
		return GuardPerOp, nil
	}
	return GuardOff, fmt.Errorf("integrity: unknown nan-guard mode %q (want off, iter or op)", s)
}

// DigestBandwidth is the modelled per-node hashing throughput in bytes per
// second. An FNV-style fold is a single multiply-xor per word, so it runs
// near memory speed; digesting a payload costs a small fraction of moving it.
const DigestBandwidth = 5e9

// ScanBandwidth is the modelled per-node throughput of the non-finite scan
// (one exponent-mask compare per element, memory bound).
const ScanBandwidth = 2e10

// CorruptedBit is the payload bit a Corruption fault flips: bit 62, the top
// exponent bit of an IEEE-754 double. Flipping it moves a value across
// ~±2^512, which keeps injected damage unambiguous — far above kernel
// round-off, so a working detector must always fire.
const CorruptedBit = 62

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Digest folds a matrix's logical payload — dimensions, then (row, col,
// bits) for every stored value that is numerically nonzero — into a 64-bit
// FNV-1a hash. Skipping explicit zeros makes the digest representation
// independent: a dense block and a CSR block holding the same values hash
// identically, so a format switch in transit is not a false corruption.
func Digest(m *matrix.Matrix) uint64 {
	h := uint64(fnvOffset)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xFF
			h *= fnvPrime
		}
	}
	mix(uint64(m.Rows()))
	mix(uint64(m.Cols()))
	m.ForEachNonzero(func(i, j int, v float64) {
		if v == 0 {
			return // CSR may store explicit zeros; hash values, not storage
		}
		mix(uint64(i))
		mix(uint64(j))
		mix(math.Float64bits(v))
	})
	return h
}

// Corrupt returns a copy of m with CorruptedBit flipped in one stored
// nonzero value, selected from the corruption entropy bits. The original is
// never mutated (blocks are shared). ok is false when m holds no nonzero
// value to damage — an all-zero payload is inert.
func Corrupt(m *matrix.Matrix, bits uint64) (corrupted *matrix.Matrix, ok bool) {
	return m.FlipValueBit(int((bits>>8)&0x7FFFFFFF), CorruptedBit)
}

// abftRelTol scales the ABFT comparison tolerance by the checksum
// magnitudes. Legitimate re-association error of a column sum over n terms
// is about n·ε ≈ 1e-12 of the magnitude for our shapes; a CorruptedBit flip
// moves a checksum by at least ~2. 1e-9 sits squarely between.
const abftRelTol = 1e-9

// abftAbsTol is the comparison floor for near-zero checksums.
const abftAbsTol = 1e-12

// ColumnChecksum returns the column-sum vector 1ᵀm (length cols), the ABFT
// checksum a multiply's validation row is built from.
func ColumnChecksum(m *matrix.Matrix) []float64 {
	sums := make([]float64, m.Cols())
	m.ForEachNonzero(func(i, j int, v float64) {
		sums[j] += v
	})
	return sums
}

// ABFTCheck validates c against the checksum identity of c = a·b: the
// checksum row 1ᵀa propagated through b must equal the column sums of c
// within a scaled tolerance. Any NaN or Inf in either side fails the check —
// a comparison against poison must not silently pass.
func ABFTCheck(a, b, c *matrix.Matrix) bool {
	ca := ColumnChecksum(a) // length k: (1ᵀa)
	lhs := make([]float64, b.Cols())
	b.ForEachNonzero(func(i, j int, v float64) {
		lhs[j] += ca[i] * v
	})
	rhs := ColumnChecksum(c)
	if len(lhs) != len(rhs) {
		return false
	}
	for j := range lhs {
		d := lhs[j] - rhs[j]
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return false
		}
		if math.Abs(d) > abftAbsTol+abftRelTol*(math.Abs(lhs[j])+math.Abs(rhs[j])) {
			return false
		}
	}
	return true
}

// ScanNonFinite reports the first NaN or Inf stored in m in row-major
// order. NaN compares unequal to zero, so dense poison is always visited.
func ScanNonFinite(m *matrix.Matrix) (row, col int, val float64, found bool) {
	m.ForEachNonzero(func(i, j int, v float64) {
		if found {
			return
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			row, col, val, found = i, j, v, true
		}
	})
	return row, col, val, found
}
