package integrity

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"remac/internal/matrix"
)

func TestDigestDeterministicAndSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := matrix.RandSparse(rng, 20, 30, 0.2)
	if Digest(m) != Digest(m.Clone()) {
		t.Fatal("digest differs between clones")
	}
	c, ok := Corrupt(m, 0xDEADBEEF)
	if !ok {
		t.Fatal("corrupt failed on a nonzero matrix")
	}
	if Digest(c) == Digest(m) {
		t.Fatal("digest blind to a flipped bit")
	}
	if m.Equal(c) {
		t.Fatal("Corrupt mutated nothing")
	}
}

func TestCorruptNeverMutatesOriginal(t *testing.T) {
	m := matrix.NewDense(2, 2)
	m.Set(0, 0, 3)
	before := m.Clone()
	for bits := uint64(0); bits < 64; bits++ {
		if _, ok := Corrupt(m, bits<<8); !ok {
			t.Fatal("corrupt failed")
		}
		if !m.Equal(before) {
			t.Fatalf("bits %d mutated the original", bits)
		}
	}
}

func TestABFTCheckPassesRealProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sp := range []float64{1.0, 0.1} {
		a := matrix.RandSparse(rng, 40, 25, sp)
		b := matrix.RandSparse(rng, 25, 30, sp)
		c := a.Mul(b)
		if !ABFTCheck(a, b, c) {
			t.Fatalf("ABFT rejects an exact product (sparsity %g)", sp)
		}
	}
}

func TestABFTCheckCatchesCorruptProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.RandDense(rng, 12, 8)
	b := matrix.RandDense(rng, 8, 9)
	c := a.Mul(b)
	for bits := uint64(0); bits < 32; bits++ {
		bad, ok := Corrupt(c, bits<<8)
		if !ok {
			t.Fatal("corrupt failed")
		}
		if ABFTCheck(a, b, bad) {
			t.Fatalf("ABFT passed a corrupted product (bits %d)", bits)
		}
	}
}

func TestABFTCheckFailsOnNonFinite(t *testing.T) {
	a := matrix.Identity(3)
	b := matrix.Identity(3)
	c := matrix.Identity(3)
	c.Set(1, 1, math.NaN())
	if ABFTCheck(a, b, c) {
		t.Fatal("ABFT passed a NaN product")
	}
	c.Set(1, 1, math.Inf(1))
	if ABFTCheck(a, b, c) {
		t.Fatal("ABFT passed an Inf product")
	}
}

func TestScanNonFinite(t *testing.T) {
	m := matrix.NewDense(3, 3)
	if _, _, _, found := ScanNonFinite(m); found {
		t.Fatal("found poison in a zero matrix")
	}
	m.Set(2, 1, math.NaN())
	i, j, v, found := ScanNonFinite(m)
	if !found || i != 2 || j != 1 || !math.IsNaN(v) {
		t.Fatalf("scan = (%d,%d,%g,%v), want (2,1,NaN,true)", i, j, v, found)
	}
	s := m.ToCSR()
	if _, _, _, found := ScanNonFinite(s); !found {
		t.Fatal("CSR scan missed the NaN")
	}
}

func TestParseModes(t *testing.T) {
	for _, c := range []struct {
		in   string
		want VerifyMode
	}{{"", VerifyOff}, {"off", VerifyOff}, {"digest", VerifyDigest}, {"abft", VerifyABFT}} {
		got, err := ParseVerifyMode(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseVerifyMode(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in && c.in != "" {
			t.Fatalf("VerifyMode round-trip broke on %q", c.in)
		}
	}
	if _, err := ParseVerifyMode("bogus"); err == nil {
		t.Fatal("bogus verify mode accepted")
	}
	for _, c := range []struct {
		in   string
		want GuardMode
	}{{"", GuardOff}, {"off", GuardOff}, {"iter", GuardPerIteration}, {"op", GuardPerOp}} {
		got, err := ParseGuardMode(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseGuardMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseGuardMode("bogus"); err == nil {
		t.Fatal("bogus guard mode accepted")
	}
}

func TestTypedErrorsUnwrap(t *testing.T) {
	var err error = &Error{Op: "dfs-read", Via: "digest", Attempts: 3}
	if !errors.Is(err, ErrCorruption) {
		t.Fatal("Error does not unwrap to ErrCorruption")
	}
	var ie *Error
	if !errors.As(err, &ie) || ie.Attempts != 3 {
		t.Fatal("errors.As lost the Error fields")
	}
	var nerr error = &NumericError{Op: "mul/bmm", Row: 1, Col: 2, Value: math.Inf(1)}
	if !errors.Is(nerr, ErrNonFinite) {
		t.Fatal("NumericError does not unwrap to ErrNonFinite")
	}
	if errors.Is(nerr, ErrCorruption) || errors.Is(err, ErrNonFinite) {
		t.Fatal("sentinels cross-match")
	}
}

func TestColumnChecksum(t *testing.T) {
	m := matrix.NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 0, 2)
	m.Set(1, 2, -4)
	got := ColumnChecksum(m)
	want := []float64{3, 0, -4}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("checksum[%d] = %g, want %g", j, got[j], want[j])
		}
	}
}
