package remac_test

import (
	"strings"
	"testing"

	"remac"
)

const apiScript = `
#@symmetric H
A = read("A")
x = read("x")
H = read("H")
i = 0
while (i < 5) {
    v = as.scalar(t(x) %*% t(A) %*% A %*% x)
    x = H %*% x - 0.001 * v * x
    i = i + 1
}
`

func apiInputs() map[string]remac.Input {
	return map[string]remac.Input{
		"A": {Data: remac.RandSparse(1, 500, 50, 0.1), VirtualRows: 5_000_000, VirtualCols: 50},
		"x": {Data: remac.RandDense(2, 50, 1)},
		"H": {Data: remac.Identity(50)},
	}
}

func TestCompileRunRoundTrip(t *testing.T) {
	prog, err := remac.Compile(apiScript, apiInputs(), remac.Config{
		Strategy: remac.Adaptive, Iterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 5 {
		t.Fatalf("iterations = %d", rep.Iterations)
	}
	if rep.SimulatedSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	if rep.Values["v"] == nil || !rep.Values["v"].IsScalar() {
		t.Fatal("scalar v missing")
	}
	if rep.TotalSeconds() < rep.SimulatedSeconds {
		t.Fatal("TotalSeconds must include compilation")
	}
}

func TestStrategiesAgreeThroughPublicAPI(t *testing.T) {
	var ref *remac.Matrix
	for _, s := range []remac.Strategy{remac.NoElimination, remac.Explicit, remac.Conservative, remac.Aggressive, remac.Automatic, remac.Adaptive} {
		prog, err := remac.Compile(apiScript, apiInputs(), remac.Config{Strategy: s, Iterations: 5})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		rep, err := prog.Run()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		x := rep.Values["x"]
		if ref == nil {
			ref = x
			continue
		}
		if !x.ApproxEqual(ref, 1e-8) {
			t.Errorf("strategy %v changed the result", s)
		}
	}
}

func TestOptionsAndExplain(t *testing.T) {
	prog, err := remac.Compile(apiScript, apiInputs(), remac.Config{Strategy: remac.Adaptive, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := prog.Options()
	if len(opts) == 0 {
		t.Fatal("no options discovered")
	}
	foundSelected := false
	for _, o := range opts {
		if o.Kind == "" || o.Key == "" || o.Occurrences == 0 {
			t.Errorf("malformed option %+v", o)
		}
		if o.Selected {
			foundSelected = true
		}
	}
	if !foundSelected && len(prog.SelectedKeys()) > 0 {
		t.Error("Selected flags inconsistent with SelectedKeys")
	}
	explain := prog.Explain()
	for _, want := range []string{"coordinates:", "options found:", "strategy:"} {
		if !strings.Contains(explain, want) {
			t.Errorf("Explain() missing %q", want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := remac.Compile("x = ", nil, remac.Config{}); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := remac.Compile("x = read(\"A\")\ny = x %*% x", map[string]remac.Input{
		"A": {Data: remac.RandDense(1, 3, 4)},
	}, remac.Config{}); err == nil {
		t.Error("dimension error not reported")
	}
	if _, err := remac.Compile("x = 1", map[string]remac.Input{"A": {}}, remac.Config{}); err == nil {
		t.Error("nil input data not reported")
	}
}

func TestBuiltinDatasetsAndWorkloads(t *testing.T) {
	if len(remac.Datasets()) != 6 || len(remac.ZipfDatasets()) != 5 {
		t.Fatal("built-in dataset lists wrong")
	}
	ds, err := remac.LoadDataset("cri2")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "cri2" {
		t.Error("name mismatch")
	}
	vr, vc := ds.VirtualDims()
	if vr != 58_400_000 || vc != 8700 {
		t.Errorf("virtual dims %dx%d", vr, vc)
	}
	if ds.Design().Sparsity() > 0.01 {
		t.Error("cri2 should be sparse")
	}
	for _, w := range remac.Workloads() {
		if _, err := ds.Inputs(w); err != nil {
			t.Errorf("Inputs(%s): %v", w, err)
		}
		if _, err := remac.WorkloadScript(w, 3); err != nil {
			t.Errorf("WorkloadScript(%s): %v", w, err)
		}
		if remac.WorkloadIterations(w) < 1 {
			t.Errorf("WorkloadIterations(%s) < 1", w)
		}
	}
	if _, err := remac.LoadDataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := ds.Inputs("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestMatrixConstructors(t *testing.T) {
	d := remac.NewDense(2, 2, []float64{1, 2, 3, 4})
	if d.At(1, 0) != 3 || d.NNZ() != 4 {
		t.Error("NewDense wrong")
	}
	z := remac.Zeros(3, 3)
	if z.NNZ() != 0 {
		t.Error("Zeros wrong")
	}
	id := remac.Identity(4)
	if id.At(2, 2) != 1 || id.At(0, 1) != 0 {
		t.Error("Identity wrong")
	}
	c := remac.NewCSR(2, 3, []int{0, 1, 1}, []int{2}, []float64{7})
	if c.At(0, 2) != 7 || c.Sparsity() == 0 {
		t.Error("NewCSR wrong")
	}
	s := remac.ZipfSparse(9, 100, 100, 0.05, 2.0)
	if s.NNZ() == 0 {
		t.Error("ZipfSparse empty")
	}
	if got := remac.RandDense(1, 2, 2).String(); got == "" {
		t.Error("String empty")
	}
}

func TestSingleNodeClusterProfile(t *testing.T) {
	// The single-node profile of Fig 3(b): everything local, so transmission
	// must vanish.
	prog, err := remac.Compile(apiScript, apiInputs(), remac.Config{
		Strategy: remac.Adaptive, Iterations: 5, Cluster: remac.SingleNodeCluster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Network primitives degenerate to in-memory copies on one node.
	if rep.TransmitSeconds > 0.2 {
		t.Fatalf("single-node run transmitted %.2fs; expected near-zero", rep.TransmitSeconds)
	}
}
