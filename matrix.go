// Package remac is a from-scratch Go reproduction of "Redundancy
// Elimination in Distributed Matrix Computation" (SIGMOD 2022): the ReMac
// optimizer — block-wise search for common and loop-constant subexpressions
// plus cost-based adaptive elimination — together with the SystemDS-like
// distributed matrix runtime it runs on, executed against a simulated
// cluster.
//
// The typical flow is Compile → Run:
//
//	prog, err := remac.Compile(script, inputs, remac.Config{Strategy: remac.Adaptive})
//	report, err := prog.Run()
//
// Scripts are written in a DML-like language (see the examples directory);
// inputs pair materialized matrices with the virtual dimensions all cost
// accounting uses.
package remac

import (
	"math/rand"

	"remac/internal/matrix"
)

// Matrix is a dense or sparse (CSR) float64 matrix — the value type of the
// runtime.
type Matrix struct {
	m *matrix.Matrix
}

func wrap(m *matrix.Matrix) *Matrix { return &Matrix{m: m} }

// NewDense builds a rows×cols matrix from row-major data (len rows*cols).
func NewDense(rows, cols int, data []float64) *Matrix {
	return wrap(matrix.NewDenseData(rows, cols, data))
}

// Zeros returns a rows×cols zero matrix.
func Zeros(rows, cols int) *Matrix { return wrap(matrix.NewDense(rows, cols)) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix { return wrap(matrix.Identity(n)) }

// NewCSR builds a sparse matrix from compressed-sparse-row arrays.
func NewCSR(rows, cols int, rowPtr, colIdx []int, vals []float64) *Matrix {
	return wrap(matrix.NewCSR(rows, cols, rowPtr, colIdx, vals))
}

// RandDense returns a seeded random dense matrix with entries in [-1, 1).
func RandDense(seed int64, rows, cols int) *Matrix {
	return wrap(matrix.RandDense(rand.New(rand.NewSource(seed)), rows, cols))
}

// RandSparse returns a seeded random CSR matrix with the given sparsity.
func RandSparse(seed int64, rows, cols int, sparsity float64) *Matrix {
	return wrap(matrix.RandSparse(rand.New(rand.NewSource(seed)), rows, cols, sparsity))
}

// ZipfSparse returns a seeded sparse matrix whose nonzeros are skewed with
// a Zipf distribution of the given exponent (0 = uniform).
func ZipfSparse(seed int64, rows, cols int, sparsity, exponent float64) *Matrix {
	return wrap(matrix.ZipfSparse(rand.New(rand.NewSource(seed)), rows, cols, sparsity, exponent))
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.m.Rows() }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.m.Cols() }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.m.At(i, j) }

// NNZ returns the number of nonzero elements.
func (m *Matrix) NNZ() int { return m.m.NNZ() }

// Sparsity returns NNZ/(rows·cols).
func (m *Matrix) Sparsity() float64 { return m.m.Sparsity() }

// IsScalar reports whether the matrix is 1×1.
func (m *Matrix) IsScalar() bool { return m.m.IsScalar() }

// ScalarValue returns the single element of a 1×1 matrix.
func (m *Matrix) ScalarValue() float64 { return m.m.ScalarValue() }

// ApproxEqual reports element-wise equality within tol.
func (m *Matrix) ApproxEqual(o *Matrix, tol float64) bool { return m.m.ApproxEqual(o.m, tol) }

// String renders small matrices fully, large ones as a summary.
func (m *Matrix) String() string { return m.m.String() }
