module remac

go 1.22
