package remac

import (
	"fmt"

	"remac/internal/algorithms"
	"remac/internal/data"
)

// Dataset is one of the built-in evaluation datasets: a materialized sample
// carrying paper-scale virtual dimensions (Table 2).
type Dataset struct {
	ds *data.Dataset
}

// Datasets lists the built-in Table 2 dataset names.
func Datasets() []string { return append([]string(nil), data.Names...) }

// ZipfDatasets lists the §6.5 skewed synthetic dataset names.
func ZipfDatasets() []string { return append([]string(nil), data.ZipfNames...) }

// LoadDataset materializes a built-in dataset deterministically.
func LoadDataset(name string) (*Dataset, error) {
	ds, err := data.Load(name)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.ds.Name }

// Design returns the materialized design matrix.
func (d *Dataset) Design() *Matrix { return wrap(d.ds.A) }

// VirtualDims returns the paper-scale dimensions.
func (d *Dataset) VirtualDims() (int64, int64) { return d.ds.VRows, d.ds.VCols }

// Inputs builds the input map for a workload over this dataset.
func (d *Dataset) Inputs(workload string) (map[string]Input, error) {
	switch algorithms.Name(workload) {
	case algorithms.GNMF:
		w, h := d.ds.GNMFFactors(10)
		return map[string]Input{
			"V":  {Data: wrap(d.ds.A), VirtualRows: d.ds.VRows, VirtualCols: d.ds.VCols},
			"W0": {Data: wrap(w), VirtualRows: d.ds.VRows, VirtualCols: 10},
			"H0": {Data: wrap(h), VirtualRows: 10, VirtualCols: d.ds.VCols},
		}, nil
	case algorithms.GD, algorithms.DFP, algorithms.BFGS, algorithms.PartialDFP:
		in := map[string]Input{
			"A":  {Data: wrap(d.ds.A), VirtualRows: d.ds.VRows, VirtualCols: d.ds.VCols},
			"H0": {Data: wrap(d.ds.InitialH()), VirtualRows: d.ds.VCols, VirtualCols: d.ds.VCols},
			"x0": {Data: wrap(d.ds.InitialX()), VirtualRows: d.ds.VCols, VirtualCols: 1},
		}
		if algorithms.Name(workload) != algorithms.PartialDFP {
			in["b"] = Input{Data: wrap(d.ds.Label()), VirtualRows: d.ds.VRows, VirtualCols: 1}
		}
		return in, nil
	default:
		return nil, fmt.Errorf("remac: unknown workload %q", workload)
	}
}

// Workloads lists the built-in algorithm names.
func Workloads() []string {
	out := make([]string, 0, len(algorithms.All)+1)
	for _, a := range algorithms.All {
		out = append(out, string(a))
	}
	return append(out, string(algorithms.PartialDFP))
}

// WorkloadScript returns the DML source of a built-in algorithm with the
// given loop trip count.
func WorkloadScript(workload string, iterations int) (string, error) {
	return algorithms.Script(algorithms.Name(workload), iterations)
}

// WorkloadIterations returns the evaluation's default trip count for a
// workload.
func WorkloadIterations(workload string) int {
	return algorithms.DefaultIterations(algorithms.Name(workload))
}
