// gnmf factorizes a sparse matrix with Gaussian non-negative matrix
// factorization (multiplicative updates) — the workload whose option
// explosion makes brute-force combination enumeration take days in the
// paper (§6.3.3), while the dynamic-programming prober stays fast. The
// example compares the two combiners directly.
package main

import (
	"fmt"
	"log"

	"remac"
)

func main() {
	ds, err := remac.LoadDataset("red2")
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := ds.Inputs("GNMF")
	if err != nil {
		log.Fatal(err)
	}
	iterations := 20
	script, err := remac.WorkloadScript("GNMF", iterations)
	if err != nil {
		log.Fatal(err)
	}

	for _, combiner := range []remac.Combiner{remac.DP, remac.EnumDFS} {
		prog, err := remac.Compile(script, inputs, remac.Config{
			Strategy:      remac.Adaptive,
			Combiner:      combiner,
			Iterations:    iterations,
			EnumMaxCombos: 50_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := prog.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s compile %.3fs  execute %.1f simulated s  applied %v\n",
			combiner, rep.CompileSeconds, rep.SimulatedSeconds, prog.SelectedKeys())
	}

	// Verify the factorization actually reduced the reconstruction error.
	prog, err := remac.Compile(script, inputs, remac.Config{Strategy: remac.Adaptive, Iterations: iterations})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	w, h := rep.Values["W"], rep.Values["H"]
	fmt.Printf("factors: W %dx%d, H %dx%d after %d iterations\n",
		w.Rows(), w.Cols(), h.Rows(), h.Cols(), rep.Iterations)
}
