// skew studies how data skew changes ReMac's planning decisions (§6.5):
// the zipf-* datasets share cri2's shape and sparsity but concentrate
// nonzeros in ever fewer rows and columns. The MNC sparsity estimator sees
// the skew and flips the AᵀA decision where the uniform metadata estimator
// cannot; hash partitioning keeps workers balanced regardless.
package main

import (
	"fmt"
	"log"

	"remac"
)

func main() {
	iterations := 10
	script, err := remac.WorkloadScript("DFP", iterations)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %12s  %s\n", "dataset", "simulated", "transmit", "worker shares")
	for _, name := range remac.ZipfDatasets() {
		ds, err := remac.LoadDataset(name)
		if err != nil {
			log.Fatal(err)
		}
		inputs, err := ds.Inputs("DFP")
		if err != nil {
			log.Fatal(err)
		}
		prog, err := remac.Compile(script, inputs, remac.Config{
			Strategy:   remac.Adaptive,
			Estimator:  remac.MNC,
			Iterations: iterations,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := prog.Run()
		if err != nil {
			log.Fatal(err)
		}
		shares := ""
		for _, s := range rep.WorkerShares {
			shares += fmt.Sprintf(" %.3f", s)
		}
		fmt.Printf("%-10s %10.1f s %10.1f s %s\n", name, rep.SimulatedSeconds, rep.TransmitSeconds, shares)
	}
}
