// linreg_dfp runs the paper's headline workload — least-squares linear
// regression via the Davidon-Fletcher-Powell method — on two of the
// built-in datasets, comparing every planning strategy. It reproduces in
// miniature the paper's central finding: the AᵀA loop-constant elimination
// is a large win on tall-narrow data (cri1) and a loss on fat data (cri3),
// and only the adaptive strategy gets both cases right.
package main

import (
	"fmt"
	"log"

	"remac"
)

func main() {
	strategies := []remac.Strategy{
		remac.NoElimination, remac.Explicit, remac.Conservative,
		remac.Aggressive, remac.Adaptive,
	}
	iterations := 10

	for _, dsName := range []string{"cri1", "cri3"} {
		ds, err := remac.LoadDataset(dsName)
		if err != nil {
			log.Fatal(err)
		}
		inputs, err := ds.Inputs("DFP")
		if err != nil {
			log.Fatal(err)
		}
		script, err := remac.WorkloadScript("DFP", iterations)
		if err != nil {
			log.Fatal(err)
		}
		vr, vc := ds.VirtualDims()
		fmt.Printf("== DFP on %s (virtually %dM×%d) ==\n", dsName, vr/1_000_000, vc)

		for _, s := range strategies {
			prog, err := remac.Compile(script, inputs, remac.Config{
				Strategy:   s,
				Iterations: iterations,
			})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := prog.Run()
			if err != nil {
				log.Fatal(err)
			}
			selected := ""
			if keys := prog.SelectedKeys(); len(keys) > 0 {
				selected = fmt.Sprintf("  applied: %v", keys)
			}
			fmt.Printf("  %-13s %8.1f simulated s%s\n", s, rep.SimulatedSeconds, selected)
		}
		fmt.Println()
	}
}
