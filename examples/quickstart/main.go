// Quickstart: compile a tiny DML-like script with ReMac's adaptive
// elimination and inspect what the optimizer found and applied.
package main

import (
	"fmt"
	"log"

	"remac"
)

const script = `
#@symmetric H
A = read("A")
x = read("x")
H = read("H")
i = 0
while (i < 10) {
    # dᵀAᵀAd from the paper's introduction: the naive plan multiplies three
    # times; reusing Ad (or hoisting AᵀA) eliminates redundant work.
    v = as.scalar(t(x) %*% t(A) %*% A %*% x)
    x = H %*% x - 0.001 * v * x
    i = i + 1
}
`

func main() {
	// A modest synthetic dataset: the matrix is materialized at 2000×200
	// but costed as if it were 20M×200 (the virtual dimensions).
	a := remac.RandSparse(1, 2000, 200, 0.05)
	inputs := map[string]remac.Input{
		"A": {Data: a, VirtualRows: 20_000_000, VirtualCols: 200},
		"x": {Data: remac.RandDense(2, 200, 1)},
		"H": {Data: remac.Identity(200)},
	}

	prog, err := remac.Compile(script, inputs, remac.Config{
		Strategy:   remac.Adaptive,
		Iterations: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovered elimination options:")
	for _, o := range prog.Options() {
		mark := "  "
		if o.Selected {
			mark = "=>"
		}
		fmt.Printf("  %s %-10s %-30s ×%d\n", mark, o.Kind, o.Key, o.Occurrences)
	}

	report, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nran %d iterations in %.1f simulated seconds (%.1fs compute, %.1fs transmission)\n",
		report.Iterations, report.SimulatedSeconds, report.ComputeSeconds, report.TransmitSeconds)
	fmt.Printf("final v = %.6f\n", report.Values["v"].ScalarValue())
}
